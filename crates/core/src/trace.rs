//! Quantum trace: what the synchronizer did over the course of a run.

use aqs_time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One completed quantum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantumRecord {
    /// Quantum index (0-based).
    pub index: u64,
    /// Simulated start time.
    pub start: SimTime,
    /// Quantum length.
    pub length: SimDuration,
    /// Packets the controller routed during this quantum (`np`).
    pub packets: u64,
}

impl QuantumRecord {
    /// Simulated end time of the quantum.
    pub fn end(&self) -> SimTime {
        self.start + self.length
    }
}

/// Append-only record of every quantum in a run.
///
/// Used for the "quantum length over time" diagnostics and to verify that
/// the adaptive policy tracked traffic the way the paper describes (long
/// quanta in compute phases, floor-length quanta in communication phases).
///
/// # Examples
///
/// ```
/// use aqs_core::QuantumTrace;
/// use aqs_time::{SimDuration, SimTime};
///
/// let mut t = QuantumTrace::enabled();
/// t.record(SimTime::ZERO, SimDuration::from_micros(1), 0);
/// t.record(SimTime::from_micros(1), SimDuration::from_micros(2), 3);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.total_quanta(), 2);
/// assert!((t.mean_length().unwrap().as_micros_f64() - 1.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct QuantumTrace {
    enabled: bool,
    records: Vec<QuantumRecord>,
    total_quanta: u64,
    total_length: SimDuration,
}

impl QuantumTrace {
    /// A trace that only keeps counters (no per-quantum records).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A trace that stores every quantum.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// A trace resumed from a snapshot: the counters restart at the values
    /// the interrupted run had accumulated, so `total_quanta` keeps its
    /// whole-run meaning. Per-quantum records cover only the post-resume
    /// suffix (the prefix lives in the snapshotted run's trace).
    pub fn resumed(enabled: bool, total_quanta: u64, total_length: SimDuration) -> Self {
        Self {
            enabled,
            records: Vec::new(),
            total_quanta,
            total_length,
        }
    }

    /// Accumulated quantum length (counted even when disabled).
    pub fn total_length(&self) -> SimDuration {
        self.total_length
    }

    /// Records one completed quantum.
    pub fn record(&mut self, start: SimTime, length: SimDuration, packets: u64) {
        let index = self.total_quanta;
        self.total_quanta += 1;
        self.total_length = self.total_length.saturating_add(length);
        if self.enabled {
            self.records.push(QuantumRecord {
                index,
                start,
                length,
                packets,
            });
        }
    }

    /// Stored records (empty when disabled).
    pub fn records(&self) -> &[QuantumRecord] {
        &self.records
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total quanta executed (counted even when disabled).
    pub fn total_quanta(&self) -> u64 {
        self.total_quanta
    }

    /// Mean quantum length, or `None` before the first quantum.
    pub fn mean_length(&self) -> Option<SimDuration> {
        if self.total_quanta == 0 {
            None
        } else {
            Some(self.total_length / self.total_quanta)
        }
    }

    /// Time-weighted mean quantum length (`Σ len² / Σ len`): the quantum a
    /// randomly chosen *instant* of simulated time lives in. For a sawtooth
    /// adaptive run this is much larger than [`mean_length`](Self::mean_length),
    /// because most *time* passes inside the few long quanta even though
    /// most *quanta* are short. Requires stored records.
    pub fn time_weighted_mean_length(&self) -> Option<SimDuration> {
        if self.records.is_empty() {
            return None;
        }
        let sum: f64 = self
            .records
            .iter()
            .map(|r| r.length.as_nanos() as f64)
            .sum();
        let sum_sq: f64 = self
            .records
            .iter()
            .map(|r| (r.length.as_nanos() as f64).powi(2))
            .sum();
        Some(SimDuration::from_nanos((sum_sq / sum).round() as u64))
    }

    /// Fraction of recorded quanta no longer than `floor` — how often the
    /// policy was braking. Requires stored records.
    pub fn fraction_at_floor(&self, floor: SimDuration) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let at = self.records.iter().filter(|r| r.length <= floor).count();
        Some(at as f64 / self.records.len() as f64)
    }

    /// Fraction of recorded quanta that saw at least one packet. Requires
    /// stored records.
    pub fn busy_fraction(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let busy = self.records.iter().filter(|r| r.packets > 0).count();
        Some(busy as f64 / self.records.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_end_time() {
        let r = QuantumRecord {
            index: 0,
            start: SimTime::from_micros(10),
            length: SimDuration::from_micros(5),
            packets: 2,
        };
        assert_eq!(r.end(), SimTime::from_micros(15));
    }

    #[test]
    fn disabled_counts_only() {
        let mut t = QuantumTrace::disabled();
        t.record(SimTime::ZERO, SimDuration::from_micros(1), 0);
        assert_eq!(t.total_quanta(), 1);
        assert!(t.is_empty());
        assert_eq!(t.mean_length(), Some(SimDuration::from_micros(1)));
    }

    #[test]
    fn enabled_stores_indexed_records() {
        let mut t = QuantumTrace::enabled();
        t.record(SimTime::ZERO, SimDuration::from_micros(1), 0);
        t.record(SimTime::from_micros(1), SimDuration::from_micros(3), 7);
        assert_eq!(t.records()[1].index, 1);
        assert_eq!(t.records()[1].packets, 7);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_trace_has_no_mean() {
        assert_eq!(QuantumTrace::disabled().mean_length(), None);
        assert_eq!(QuantumTrace::enabled().time_weighted_mean_length(), None);
        assert_eq!(QuantumTrace::enabled().busy_fraction(), None);
        assert_eq!(
            QuantumTrace::enabled().fraction_at_floor(SimDuration::from_micros(1)),
            None
        );
    }

    #[test]
    fn time_weighted_mean_favours_long_quanta() {
        let mut t = QuantumTrace::enabled();
        // 9 short quanta + 1 long one covering most of the time.
        let mut at = SimTime::ZERO;
        for _ in 0..9 {
            t.record(at, SimDuration::from_micros(1), 1);
            at += SimDuration::from_micros(1);
        }
        t.record(at, SimDuration::from_micros(991), 0);
        let plain = t.mean_length().unwrap();
        let weighted = t.time_weighted_mean_length().unwrap();
        assert_eq!(plain, SimDuration::from_micros(100));
        assert!(
            weighted > SimDuration::from_micros(900),
            "weighted was {weighted}"
        );
    }

    #[test]
    fn floor_and_busy_fractions() {
        let mut t = QuantumTrace::enabled();
        t.record(SimTime::ZERO, SimDuration::from_micros(1), 2);
        t.record(SimTime::from_micros(1), SimDuration::from_micros(1), 0);
        t.record(SimTime::from_micros(2), SimDuration::from_micros(50), 0);
        t.record(SimTime::from_micros(52), SimDuration::from_micros(500), 3);
        assert_eq!(t.fraction_at_floor(SimDuration::from_micros(1)), Some(0.5));
        assert_eq!(t.busy_fraction(), Some(0.5));
    }
}
