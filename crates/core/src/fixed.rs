//! Fixed-quantum baseline.

use crate::policy::QuantumPolicy;
use aqs_time::SimDuration;
use serde::{Deserialize, Serialize};

/// Lock-step synchronization with a constant quantum — the conservative
/// baseline the paper's adaptive technique is measured against.
///
/// With `Q ≤ T` (minimum network latency) this is the provably safe
/// Wisconsin-Wind-Tunnel-style scheme: every remote event is known before
/// the quantum in which it must be delivered, so no stragglers occur. With
/// larger `Q` it trades accuracy for speed without any adaptation.
///
/// # Examples
///
/// ```
/// use aqs_core::{FixedQuantum, QuantumPolicy};
/// use aqs_time::SimDuration;
///
/// let mut p = FixedQuantum::from_micros(100);
/// assert_eq!(p.next_quantum(999), SimDuration::from_micros(100));
/// assert_eq!(p.label(), "100");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedQuantum {
    quantum: SimDuration,
}

impl FixedQuantum {
    /// Creates a fixed policy.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        Self { quantum }
    }

    /// Creates a fixed policy of `us` microseconds.
    pub fn from_micros(us: u64) -> Self {
        Self::new(SimDuration::from_micros(us))
    }

    /// The constant quantum.
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }
}

impl QuantumPolicy for FixedQuantum {
    fn initial_quantum(&self) -> SimDuration {
        self.quantum
    }

    fn next_quantum(&mut self, _np: u64) -> SimDuration {
        self.quantum
    }

    fn label(&self) -> String {
        // The paper labels fixed configurations by their quantum in µs.
        let us = self.quantum.as_micros_f64();
        if (us.fract()).abs() < 1e-9 {
            format!("{}", us as u64)
        } else {
            format!("{us}")
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_regardless_of_traffic() {
        let mut p = FixedQuantum::from_micros(10);
        assert_eq!(p.initial_quantum(), SimDuration::from_micros(10));
        for np in [0, 1, 1000] {
            assert_eq!(p.next_quantum(np), SimDuration::from_micros(10));
        }
        p.reset();
        assert_eq!(p.next_quantum(5), SimDuration::from_micros(10));
    }

    #[test]
    fn labels() {
        assert_eq!(FixedQuantum::from_micros(1).label(), "1");
        assert_eq!(FixedQuantum::from_micros(1000).label(), "1000");
        assert_eq!(
            FixedQuantum::new(SimDuration::from_nanos(1500)).label(),
            "1.5"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_quantum_rejected() {
        let _ = FixedQuantum::new(SimDuration::ZERO);
    }
}
