//! The paper's Algorithm 1: the adaptive (dynamic) quantum.

use crate::policy::QuantumPolicy;
use aqs_time::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of the adaptive quantum algorithm.
///
/// The paper's guidance (§3): grow slowly (`inc` of 2–5 %) and shrink
/// abruptly — `dec` near `1/√(maxQ)` or `1/∛(maxQ)` so that the quantum
/// collapses from the ceiling to the floor "in just two or three quanta at
/// most". Both published configurations use `dec = 0.02`.
///
/// # Examples
///
/// ```
/// use aqs_core::AdaptiveConfig;
/// use aqs_time::SimDuration;
///
/// let cfg = AdaptiveConfig::paper_dyn1();
/// assert_eq!(cfg.min_quantum, SimDuration::from_micros(1));
/// assert_eq!(cfg.max_quantum, SimDuration::from_micros(1000));
/// assert!((cfg.inc - 1.03).abs() < 1e-12);
/// assert!((cfg.dec - 0.02).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Quantum floor (the paper uses the safe bound, 1 µs).
    pub min_quantum: SimDuration,
    /// Quantum ceiling (the paper uses 1000 µs).
    pub max_quantum: SimDuration,
    /// Multiplicative growth factor applied after a packet-free quantum
    /// (> 1).
    pub inc: f64,
    /// Multiplicative shrink factor applied after a quantum that saw
    /// packets (in `(0, 1)`).
    pub dec: f64,
}

impl AdaptiveConfig {
    /// Creates and validates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `min_quantum` is zero or exceeds `max_quantum`, if
    /// `inc ≤ 1`, or if `dec` is outside `(0, 1)`.
    pub fn new(min_quantum: SimDuration, max_quantum: SimDuration, inc: f64, dec: f64) -> Self {
        assert!(!min_quantum.is_zero(), "min_quantum must be positive");
        assert!(
            min_quantum <= max_quantum,
            "min_quantum must not exceed max_quantum"
        );
        assert!(inc.is_finite() && inc > 1.0, "inc must be > 1, got {inc}");
        assert!(
            dec.is_finite() && dec > 0.0 && dec < 1.0,
            "dec must be in (0,1), got {dec}"
        );
        Self {
            min_quantum,
            max_quantum,
            inc,
            dec,
        }
    }

    /// The paper's `dyn 1`: 1–1000 µs, +3 % growth, ×0.02 shrink.
    pub fn paper_dyn1() -> Self {
        Self::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(1000),
            1.03,
            0.02,
        )
    }

    /// The paper's `dyn 2`: 1–1000 µs, +5 % growth, ×0.02 shrink.
    pub fn paper_dyn2() -> Self {
        Self::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(1000),
            1.05,
            0.02,
        )
    }

    /// A `dec` that reaches the floor from the ceiling in at most `steps`
    /// shrinks: `(min/max)^(1/steps)` — the paper's `1/√maxQ` rule
    /// generalized.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn dec_for_floor_in(min: SimDuration, max: SimDuration, steps: u32) -> f64 {
        assert!(steps > 0, "steps must be positive");
        assert!(!min.is_zero() && min <= max, "need 0 < min <= max");
        if min == max {
            return 0.5; // any valid dec; range is degenerate
        }
        (min.as_nanos() as f64 / max.as_nanos() as f64).powf(1.0 / steps as f64)
    }

    /// Number of consecutive quiet quanta needed to grow from the floor to
    /// the ceiling (the "acceleration runway" — 2–5 % growth makes this a
    /// few hundred quanta, which is what damps the EP 64-node speedup in
    /// the paper's §6 table).
    pub fn quanta_to_ceiling(&self) -> u32 {
        let ratio = self.max_quantum.as_nanos() as f64 / self.min_quantum.as_nanos() as f64;
        ratio.ln().div_euclid(self.inc.ln()).max(0.0) as u32 + 1
    }
}

/// The paper's Algorithm 1 — "driving over speed bumps".
///
/// State machine, verbatim from the paper:
///
/// ```text
/// Q = min_Q
/// repeat
///     if np == 0 { Q *= inc } else { Q *= dec }
///     Q = clamp(Q, min_Q, max_Q)
/// until end of simulation
/// ```
///
/// where `np` is the number of network packets the controller routed during
/// the quantum that just ended.
///
/// # Examples
///
/// ```
/// use aqs_core::{AdaptiveConfig, AdaptiveQuantum, QuantumPolicy};
/// use aqs_time::SimDuration;
///
/// let mut p = AdaptiveQuantum::new(AdaptiveConfig::paper_dyn1());
/// assert_eq!(p.next_quantum(0), SimDuration::from_nanos(1030)); // ×1.03
/// assert_eq!(p.next_quantum(4), SimDuration::from_micros(1));   // ×0.02, clamped
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveQuantum {
    config: AdaptiveConfig,
    /// Current quantum in (exact) nanoseconds as `f64`, so repeated small
    /// multiplications don't quantize to nothing; public reads round.
    current_ns: f64,
    quiet_streak: u64,
    shrink_count: u64,
}

impl AdaptiveQuantum {
    /// Creates the policy at its floor quantum.
    pub fn new(config: AdaptiveConfig) -> Self {
        Self {
            config,
            current_ns: config.min_quantum.as_nanos() as f64,
            quiet_streak: 0,
            shrink_count: 0,
        }
    }

    /// The paper's `dyn 1` configuration.
    pub fn paper_dyn1() -> Self {
        Self::new(AdaptiveConfig::paper_dyn1())
    }

    /// The paper's `dyn 2` configuration.
    pub fn paper_dyn2() -> Self {
        Self::new(AdaptiveConfig::paper_dyn2())
    }

    /// The configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Current quantum value.
    pub fn current(&self) -> SimDuration {
        SimDuration::from_nanos(self.current_ns.round() as u64)
    }

    /// How many consecutive packet-free quanta the policy has seen.
    pub fn quiet_streak(&self) -> u64 {
        self.quiet_streak
    }

    /// How many times the quantum has been shrunk ("speed bumps hit").
    pub fn shrink_count(&self) -> u64 {
        self.shrink_count
    }

    fn clamp(&mut self) {
        #[allow(unused_mut)]
        let mut min = self.config.min_quantum.as_nanos() as f64;
        #[allow(unused_mut)]
        let mut max = self.config.max_quantum.as_nanos() as f64;
        #[cfg(feature = "fault-inject")]
        {
            if crate::fault::armed(crate::fault::Fault::QuantumClampHigh) {
                max += self.config.min_quantum.as_nanos() as f64;
            }
            if crate::fault::armed(crate::fault::Fault::QuantumClampLow) {
                min /= 2.0;
            }
        }
        self.current_ns = self.current_ns.clamp(min, max);
    }
}

impl QuantumPolicy for AdaptiveQuantum {
    fn initial_quantum(&self) -> SimDuration {
        self.config.min_quantum
    }

    fn next_quantum(&mut self, np: u64) -> SimDuration {
        #[allow(unused_mut)]
        let mut quiet = np == 0;
        #[cfg(feature = "fault-inject")]
        if crate::fault::armed(crate::fault::Fault::ShrinkOffByOne) {
            quiet = np <= 1;
        }
        if quiet {
            self.quiet_streak += 1;
            self.current_ns *= self.config.inc;
        } else {
            self.quiet_streak = 0;
            self.shrink_count += 1;
            self.current_ns *= self.config.dec;
        }
        self.clamp();
        self.current()
    }

    fn label(&self) -> String {
        format!("dyn {:.2}:{:.2}", self.config.inc, self.config.dec)
    }

    fn reset(&mut self) {
        self.current_ns = self.config.min_quantum.as_nanos() as f64;
        self.quiet_streak = 0;
        self.shrink_count = 0;
    }

    fn save_state(&self) -> Vec<u64> {
        vec![
            self.current_ns.to_bits(),
            self.quiet_streak,
            self.shrink_count,
        ]
    }

    fn load_state(&mut self, state: &[u64]) -> Result<(), String> {
        let [current, quiet, shrinks] = state else {
            return Err(format!(
                "adaptive policy expects 3 state words, got {}",
                state.len()
            ));
        };
        self.current_ns = f64::from_bits(*current);
        self.quiet_streak = *quiet;
        self.shrink_count = *shrinks;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn starts_at_floor() {
        let p = AdaptiveQuantum::paper_dyn1();
        assert_eq!(p.initial_quantum(), SimDuration::from_micros(1));
        assert_eq!(p.current(), SimDuration::from_micros(1));
    }

    #[test]
    fn grows_by_inc_when_quiet() {
        let mut p = AdaptiveQuantum::paper_dyn2();
        assert_eq!(p.next_quantum(0), SimDuration::from_nanos(1050));
        assert_eq!(p.next_quantum(0), SimDuration::from_nanos(1103)); // 1102.5 rounded
        assert_eq!(p.quiet_streak(), 2);
    }

    #[test]
    fn shrinks_by_dec_on_traffic() {
        let mut p = AdaptiveQuantum::paper_dyn1();
        // Climb to the ceiling first.
        for _ in 0..300 {
            p.next_quantum(0);
        }
        assert_eq!(p.current(), SimDuration::from_micros(1000));
        // 1000 µs × 0.02 = 20 µs, then 0.4 µs → clamped to 1 µs.
        assert_eq!(p.next_quantum(1), SimDuration::from_micros(20));
        assert_eq!(p.next_quantum(1), SimDuration::from_micros(1));
        assert_eq!(p.shrink_count(), 2);
        assert_eq!(p.quiet_streak(), 0);
    }

    #[test]
    fn floor_reached_in_two_or_three_quanta_as_paper_claims() {
        // dec ≈ 1/√1000 → two shrinks: 1000 → 31.6 → 1.0 (floor).
        let cfg = AdaptiveConfig::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(1000),
            1.03,
            1.0 / (1000.0f64).sqrt(),
        );
        let mut p = AdaptiveQuantum::new(cfg);
        for _ in 0..400 {
            p.next_quantum(0);
        }
        let mut shrinks = 0;
        while p.current() > cfg.min_quantum {
            p.next_quantum(1);
            shrinks += 1;
            assert!(shrinks <= 3, "took more than 3 shrinks to hit the floor");
        }
        assert!(shrinks >= 2);
    }

    #[test]
    fn never_leaves_bounds() {
        let mut p = AdaptiveQuantum::paper_dyn1();
        for i in 0..10_000u64 {
            let q = p.next_quantum(if i % 7 == 0 { i } else { 0 });
            assert!(q >= SimDuration::from_micros(1) && q <= SimDuration::from_micros(1000));
        }
    }

    #[test]
    fn reset_restores_floor() {
        let mut p = AdaptiveQuantum::paper_dyn1();
        for _ in 0..50 {
            p.next_quantum(0);
        }
        p.reset();
        assert_eq!(p.current(), SimDuration::from_micros(1));
        assert_eq!(p.quiet_streak(), 0);
        assert_eq!(p.shrink_count(), 0);
    }

    #[test]
    fn quanta_to_ceiling_matches_growth() {
        let cfg = AdaptiveConfig::paper_dyn1();
        let mut p = AdaptiveQuantum::new(cfg);
        let mut n = 0;
        while p.current() < cfg.max_quantum {
            p.next_quantum(0);
            n += 1;
        }
        let predicted = cfg.quanta_to_ceiling();
        assert!(
            (n as i64 - predicted as i64).abs() <= 1,
            "measured {n}, predicted {predicted}"
        );
    }

    #[test]
    fn dec_for_floor_in_is_exact() {
        let min = SimDuration::from_micros(1);
        let max = SimDuration::from_micros(1000);
        let dec = AdaptiveConfig::dec_for_floor_in(min, max, 2);
        // Two applications land exactly on the floor.
        let after_two = 1_000_000.0 * dec * dec;
        assert!((after_two - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn label_mentions_both_factors() {
        assert_eq!(AdaptiveQuantum::paper_dyn1().label(), "dyn 1.03:0.02");
        assert_eq!(AdaptiveQuantum::paper_dyn2().label(), "dyn 1.05:0.02");
    }

    #[test]
    #[should_panic(expected = "inc must be > 1")]
    fn non_growing_inc_rejected() {
        let _ = AdaptiveConfig::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(10),
            1.0,
            0.5,
        );
    }

    #[test]
    #[should_panic(expected = "dec must be in (0,1)")]
    fn bad_dec_rejected() {
        let _ = AdaptiveConfig::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(10),
            1.05,
            1.0,
        );
    }

    proptest! {
        /// For any np sequence, the quantum stays within bounds and reacts
        /// in the right direction.
        #[test]
        fn algorithm_invariants(nps in prop::collection::vec(0u64..5, 1..500)) {
            let cfg = AdaptiveConfig::paper_dyn1();
            let mut p = AdaptiveQuantum::new(cfg);
            let mut prev = p.current();
            for np in nps {
                let q = p.next_quantum(np);
                prop_assert!(q >= cfg.min_quantum && q <= cfg.max_quantum);
                if np == 0 {
                    prop_assert!(q >= prev, "quiet quantum must not shrink");
                } else {
                    prop_assert!(q <= prev, "busy quantum must not grow");
                }
                prev = q;
            }
        }
    }
}
