//! Bounded-memory (host, sim) progress checkpoints.

use aqs_time::{HostTime, SimTime};
use serde::{Deserialize, Serialize};

/// Records `(host_time, sim_time)` checkpoints with bounded memory.
///
/// A ground-truth run executes hundreds of thousands of quanta; storing one
/// checkpoint per quantum would dwarf the rest of the result. The recorder
/// keeps at most `capacity` points: when full, it drops every other stored
/// point and doubles its sampling stride, preserving an even coverage of
/// the whole run.
///
/// # Examples
///
/// ```
/// use aqs_cluster::ProgressRecorder;
/// use aqs_time::{HostTime, SimTime};
///
/// let mut r = ProgressRecorder::new(64);
/// for i in 0..10_000u64 {
///     r.record(HostTime::from_nanos(i * 100), SimTime::from_nanos(i));
/// }
/// assert!(r.points().len() <= 64);
/// // Coverage spans the whole run:
/// assert!(r.points().last().unwrap().1 >= SimTime::from_nanos(9_000));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProgressRecorder {
    capacity: usize,
    stride: u64,
    seen: u64,
    points: Vec<(HostTime, SimTime)>,
}

impl ProgressRecorder {
    /// Creates a recorder keeping at most `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 4`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 4, "capacity must be at least 4");
        Self {
            capacity,
            stride: 1,
            seen: 0,
            points: Vec::new(),
        }
    }

    /// A disabled recorder that stores nothing.
    pub fn disabled() -> Self {
        Self {
            capacity: 0,
            stride: 1,
            seen: 0,
            points: Vec::new(),
        }
    }

    /// Offers one checkpoint; it is stored if it falls on the current
    /// sampling stride.
    pub fn record(&mut self, host: HostTime, sim: SimTime) {
        if self.capacity == 0 {
            return;
        }
        if self.seen.is_multiple_of(self.stride) {
            if self.points.len() == self.capacity {
                // Halve resolution: keep even indices, double the stride.
                let kept: Vec<_> = self.points.iter().copied().step_by(2).collect();
                self.points = kept;
                self.stride *= 2;
                // The current sample may no longer be on-stride.
                if self.seen.is_multiple_of(self.stride) {
                    self.points.push((host, sim));
                }
            } else {
                self.points.push((host, sim));
            }
        }
        self.seen += 1;
    }

    /// Stored checkpoints, in order.
    pub fn points(&self) -> &[(HostTime, SimTime)] {
        &self.points
    }

    /// Total checkpoints offered (stored or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_everything_under_capacity() {
        let mut r = ProgressRecorder::new(16);
        for i in 0..10u64 {
            r.record(HostTime::from_nanos(i), SimTime::from_nanos(i));
        }
        assert_eq!(r.points().len(), 10);
        assert_eq!(r.seen(), 10);
    }

    #[test]
    fn decimates_when_full() {
        let mut r = ProgressRecorder::new(8);
        for i in 0..1000u64 {
            r.record(HostTime::from_nanos(i), SimTime::from_nanos(i));
        }
        assert!(r.points().len() <= 8);
        // Points remain sorted and span the run.
        let pts = r.points();
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(pts[0].0 <= HostTime::from_nanos(10));
        assert!(pts.last().unwrap().0 >= HostTime::from_nanos(800));
    }

    #[test]
    fn disabled_stores_nothing() {
        let mut r = ProgressRecorder::disabled();
        r.record(HostTime::ZERO, SimTime::ZERO);
        assert!(r.points().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_capacity_rejected() {
        let _ = ProgressRecorder::new(2);
    }
}
