//! Run configuration for the cluster simulator.

use aqs_core::SyncConfig;
use aqs_net::NicModel;
use aqs_node::{CpuModel, HostModel, SamplingModel};
use aqs_time::HostDuration;
use serde::{Deserialize, Serialize};

/// Host-time cost of one quantum barrier across `n` node simulators.
///
/// The paper's synchronization goes through the central network controller:
/// every node tells the controller it reached the quantum boundary and waits
/// for the go-ahead, so the cost grows linearly with the node count —
/// `base + per_node · n`.
///
/// # Examples
///
/// ```
/// use aqs_cluster::BarrierCostModel;
/// use aqs_time::HostDuration;
///
/// let b = BarrierCostModel::default();
/// assert!(b.cost(64) > b.cost(8));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BarrierCostModel {
    /// Fixed cost per barrier.
    pub base: HostDuration,
    /// Additional cost per participating node.
    pub per_node: HostDuration,
}

impl BarrierCostModel {
    /// Creates a barrier cost model.
    pub fn new(base: HostDuration, per_node: HostDuration) -> Self {
        Self { base, per_node }
    }

    /// A barrier with no cost at all (for tests isolating other effects).
    pub fn free() -> Self {
        Self::new(HostDuration::ZERO, HostDuration::ZERO)
    }

    /// Cost of one barrier with `n` participants.
    pub fn cost(&self, n: usize) -> HostDuration {
        self.base + self.per_node * n as u64
    }
}

impl Default for BarrierCostModel {
    /// The calibrated default from DESIGN.md §6: `0.3 ms + 0.25 ms · n`.
    fn default() -> Self {
        Self::new(
            HostDuration::from_micros(300),
            HostDuration::from_micros(250),
        )
    }
}

/// Everything the engine needs besides the programs themselves.
///
/// Construct with [`ClusterConfig::new`] and chain `with_*` methods
/// (consuming builder style).
///
/// # Examples
///
/// ```
/// use aqs_cluster::ClusterConfig;
/// use aqs_core::SyncConfig;
///
/// let cfg = ClusterConfig::new(SyncConfig::paper_dyn1())
///     .with_seed(7)
///     .with_traffic_trace(true);
/// assert_eq!(cfg.seed, 7);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Experiment seed; node RNG substreams derive from it.
    pub seed: u64,
    /// Synchronization policy.
    pub sync: SyncConfig,
    /// NIC timing (shared by all nodes).
    pub nic: NicModel,
    /// CPU timing (shared by all nodes).
    pub cpu: CpuModel,
    /// Host execution cost model.
    pub host: HostModel,
    /// Barrier cost model.
    pub barrier: BarrierCostModel,
    /// Host latency from a node simulator to the network controller (the
    /// socket hop; packets become visible to the controller this much host
    /// time after leaving the sending simulator).
    pub controller_hop: HostDuration,
    /// Record every routed packet (Figure 9 traffic charts). Costs memory.
    pub record_traffic: bool,
    /// Record every quantum (length + packet count).
    pub record_quanta: bool,
    /// Record (host, sim) progress checkpoints for speedup-over-time series.
    pub record_progress: bool,
    /// Per-node host-model overrides (heterogeneous host cores): entry `i`,
    /// when present, replaces [`Self::host`] for node `i`. Used e.g. to
    /// stage the paper's Figure 3 fast-node/slow-node scenarios.
    pub host_overrides: Vec<Option<HostModel>>,
    /// Optional simulator sampling schedule (the paper's §7 future work):
    /// node simulators alternate detailed and fast-forward phases, trading
    /// guest-timing fidelity for host speed on top of whatever the quantum
    /// policy saves.
    pub sampling: Option<SamplingModel>,
}

impl ClusterConfig {
    /// Creates a configuration with the paper's defaults and the given
    /// synchronization policy.
    pub fn new(sync: SyncConfig) -> Self {
        Self {
            seed: 0xA95_2008,
            sync,
            nic: NicModel::paper_default(),
            cpu: CpuModel::default(),
            host: HostModel::default(),
            barrier: BarrierCostModel::default(),
            controller_hop: HostDuration::from_micros(2),
            record_traffic: false,
            record_quanta: false,
            record_progress: false,
            host_overrides: Vec::new(),
            sampling: None,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the sync policy, keeping everything else — the way an
    /// experiment sweeps configurations against a fixed workload/host.
    pub fn with_sync(mut self, sync: SyncConfig) -> Self {
        self.sync = sync;
        self
    }

    /// Replaces the NIC model.
    pub fn with_nic(mut self, nic: NicModel) -> Self {
        self.nic = nic;
        self
    }

    /// Replaces the CPU model.
    pub fn with_cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Replaces the host cost model.
    pub fn with_host(mut self, host: HostModel) -> Self {
        self.host = host;
        self
    }

    /// Replaces the barrier cost model.
    pub fn with_barrier(mut self, barrier: BarrierCostModel) -> Self {
        self.barrier = barrier;
        self
    }

    /// Enables/disables the traffic trace.
    pub fn with_traffic_trace(mut self, on: bool) -> Self {
        self.record_traffic = on;
        self
    }

    /// Enables/disables the quantum trace.
    pub fn with_quantum_trace(mut self, on: bool) -> Self {
        self.record_quanta = on;
        self
    }

    /// Enables/disables progress checkpoints.
    pub fn with_progress(mut self, on: bool) -> Self {
        self.record_progress = on;
        self
    }

    /// Enables simulator sampling (see [`SamplingModel`]).
    pub fn with_sampling(mut self, sampling: SamplingModel) -> Self {
        self.sampling = Some(sampling);
        self
    }

    /// Overrides the host model for one node (heterogeneous host cores).
    pub fn with_node_host(mut self, node: usize, model: HostModel) -> Self {
        if self.host_overrides.len() <= node {
            self.host_overrides.resize(node + 1, None);
        }
        self.host_overrides[node] = Some(model);
        self
    }

    /// The host model in effect for node `i`.
    pub fn host_for(&self, i: usize) -> HostModel {
        self.host_overrides
            .get(i)
            .copied()
            .flatten()
            .unwrap_or(self.host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_cost_is_linear() {
        let b = BarrierCostModel::new(
            HostDuration::from_micros(100),
            HostDuration::from_micros(10),
        );
        assert_eq!(b.cost(0), HostDuration::from_micros(100));
        assert_eq!(b.cost(8), HostDuration::from_micros(180));
        assert_eq!(b.cost(64), HostDuration::from_micros(740));
    }

    #[test]
    fn free_barrier_is_zero() {
        assert_eq!(BarrierCostModel::free().cost(1000), HostDuration::ZERO);
    }

    #[test]
    fn builder_chain() {
        let cfg = ClusterConfig::new(SyncConfig::fixed_micros(10))
            .with_seed(3)
            .with_quantum_trace(true)
            .with_progress(true);
        assert_eq!(cfg.seed, 3);
        assert!(cfg.record_quanta);
        assert!(cfg.record_progress);
        assert!(!cfg.record_traffic);
    }

    #[test]
    fn node_host_overrides() {
        use aqs_node::HostModel;
        let cfg = ClusterConfig::new(SyncConfig::ground_truth())
            .with_node_host(2, HostModel::uniform(90.0, 0.5));
        assert_eq!(cfg.host_for(0), cfg.host);
        assert!((cfg.host_for(2).base_slowdown() - 90.0).abs() < 1e-12);
        assert_eq!(cfg.host_for(9), cfg.host);
    }

    #[test]
    fn with_sync_swaps_policy_only() {
        let a = ClusterConfig::new(SyncConfig::fixed_micros(1)).with_seed(9);
        let b = a.clone().with_sync(SyncConfig::paper_dyn1());
        assert_eq!(b.seed, 9);
        assert_ne!(a.sync, b.sync);
    }
}
