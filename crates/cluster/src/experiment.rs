//! Experiment driver: baseline + configuration sweep, the way the paper's
//! evaluation is structured.
//!
//! Every experiment runs the same workload once per synchronization
//! configuration, always including the 1 µs ground truth first, and derives
//! the two axes of every figure:
//!
//! * **accuracy error** — relative deviation of the benchmark's
//!   self-reported metric from the ground-truth value (§5: "we use the
//!   application-specific metrics as an estimate for the relative
//!   accuracy");
//! * **speedup** — ratio of modelled host wall-clock, ground truth over
//!   configuration.

use crate::config::ClusterConfig;
use crate::engine::run_cluster_impl;
use crate::result::RunResult;
use aqs_core::SyncConfig;
use aqs_net::PerfectSwitch;
use aqs_node::RegionId;
use aqs_obs::NullRecorder;
use aqs_time::SimDuration;
use aqs_workloads::{MetricKind, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A workload's self-reported performance number.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AppMetric {
    /// Millions of operations per second over the timed kernel (NAS).
    Mops(f64),
    /// Wall-clock (simulated) duration of the timed kernel (NAMD).
    KernelTime(SimDuration),
}

impl AppMetric {
    /// Relative error of this metric against the ground-truth value.
    ///
    /// # Panics
    ///
    /// Panics if the two metrics are of different kinds.
    pub fn error_vs(&self, baseline: &AppMetric) -> f64 {
        match (self, baseline) {
            (AppMetric::Mops(m), AppMetric::Mops(m0)) => aqs_metrics::relative_error(*m, *m0),
            (AppMetric::KernelTime(t), AppMetric::KernelTime(t0)) => {
                aqs_metrics::relative_error(t.as_nanos() as f64, t0.as_nanos() as f64)
            }
            _ => panic!("cannot compare {self:?} against {baseline:?}"),
        }
    }

    /// The raw scalar value (MOPS, or kernel seconds).
    pub fn value(&self) -> f64 {
        match self {
            AppMetric::Mops(m) => *m,
            AppMetric::KernelTime(t) => t.as_secs_f64(),
        }
    }
}

impl fmt::Display for AppMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppMetric::Mops(m) => write!(f, "{m:.2} MOPS"),
            AppMetric::KernelTime(t) => write!(f, "{t}"),
        }
    }
}

/// Computes a run's self-reported metric per the workload's convention.
///
/// # Panics
///
/// Panics if the run has no closed kernel region.
pub fn app_metric(result: &RunResult, kind: MetricKind) -> AppMetric {
    let span = result
        .region_span(RegionId::KERNEL)
        .expect("workload must close its kernel region");
    match kind {
        MetricKind::Mops => {
            let mops = result.total_ops() as f64 / span.as_secs_f64() / 1e6;
            AppMetric::Mops(mops)
        }
        MetricKind::KernelTime => AppMetric::KernelTime(span),
    }
}

/// Runs one workload under one configuration.
///
/// # Panics
///
/// Panics if the engine reports an error (deadlocked workload).
pub fn run_workload(spec: &WorkloadSpec, config: &ClusterConfig) -> RunResult {
    match run_cluster_impl(
        spec.programs.clone(),
        config,
        PerfectSwitch::new(),
        NullRecorder,
    ) {
        Ok((r, _)) => r,
        Err(e) => panic!("{e}"),
    }
}

/// One non-baseline configuration's outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConfigOutcome {
    /// The configuration.
    pub sync: SyncConfig,
    /// Its display label.
    pub label: String,
    /// The full run result.
    pub result: RunResult,
    /// The benchmark's self-reported metric.
    pub metric: AppMetric,
    /// Relative error vs. ground truth.
    pub accuracy_error: f64,
    /// Host-time speedup vs. ground truth.
    pub speedup: f64,
    /// Simulated-completion-time ratio vs. ground truth (IS' "simulated
    /// execution ratio").
    pub sim_ratio: f64,
}

/// A full experiment: one workload, the ground truth, and a sweep of
/// configurations.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// Base configuration (seed, models); its `sync` field is replaced per
    /// sweep entry, and by the ground truth for the baseline.
    pub base: ClusterConfig,
    /// Configurations to sweep (the baseline is added automatically).
    pub sweep: Vec<SyncConfig>,
}

/// Results of an [`Experiment`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Workload name.
    pub name: String,
    /// Node count.
    pub n_nodes: usize,
    /// Ground-truth run.
    pub baseline: RunResult,
    /// Ground-truth metric.
    pub baseline_metric: AppMetric,
    /// One outcome per sweep configuration, in sweep order.
    pub outcomes: Vec<ConfigOutcome>,
}

impl Experiment {
    /// Creates an experiment.
    pub fn new(workload: WorkloadSpec, base: ClusterConfig, sweep: Vec<SyncConfig>) -> Self {
        Self {
            workload,
            base,
            sweep,
        }
    }

    /// Runs the baseline and every sweep configuration.
    ///
    /// # Panics
    ///
    /// Panics on the engine's own failure modes (deadlock, invalid
    /// programs).
    pub fn run(&self) -> ExperimentResult {
        let base_cfg = self.base.clone().with_sync(SyncConfig::ground_truth());
        let baseline = run_workload(&self.workload, &base_cfg);
        let baseline_metric = app_metric(&baseline, self.workload.metric);
        let outcomes = self
            .sweep
            .iter()
            .map(|sync| {
                let cfg = self.base.clone().with_sync(sync.clone());
                let result = run_workload(&self.workload, &cfg);
                let metric = app_metric(&result, self.workload.metric);
                ConfigOutcome {
                    sync: sync.clone(),
                    label: result.sync_label.clone(),
                    accuracy_error: metric.error_vs(&baseline_metric),
                    speedup: result.speedup_vs(&baseline),
                    sim_ratio: result.sim_ratio_vs(&baseline),
                    metric,
                    result,
                }
            })
            .collect();
        ExperimentResult {
            name: self.workload.name.clone(),
            n_nodes: self.workload.n_ranks(),
            baseline,
            baseline_metric,
            outcomes,
        }
    }
}

/// The paper's standard sweep: fixed 10/100/1000 µs plus the two adaptive
/// configurations (Figures 6–8).
pub fn paper_sweep() -> Vec<SyncConfig> {
    vec![
        SyncConfig::fixed_micros(10),
        SyncConfig::fixed_micros(100),
        SyncConfig::fixed_micros(1000),
        SyncConfig::paper_dyn1(),
        SyncConfig::paper_dyn2(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqs_workloads::{burst, ping_pong, uniform_compute};

    fn base() -> ClusterConfig {
        ClusterConfig::new(SyncConfig::ground_truth()).with_seed(3)
    }

    #[test]
    fn metric_kinds_compute() {
        let spec = uniform_compute(2, 2_600_000, 0.0); // 1 ms kernel
        let result = run_workload(&spec, &base());
        let m = app_metric(&result, MetricKind::Mops);
        match m {
            // 5.2M ops over ~1 ms → ~5200 MOPS (minus region overhead).
            AppMetric::Mops(v) => assert!((3000.0..6000.0).contains(&v), "MOPS {v}"),
            _ => panic!("wrong kind"),
        }
        let t = app_metric(&result, MetricKind::KernelTime);
        assert!(matches!(t, AppMetric::KernelTime(d) if d >= SimDuration::from_micros(900)));
    }

    #[test]
    fn error_vs_is_relative() {
        let a = AppMetric::Mops(80.0);
        let b = AppMetric::Mops(100.0);
        assert!((a.error_vs(&b) - 0.2).abs() < 1e-12);
        let t1 = AppMetric::KernelTime(SimDuration::from_micros(150));
        let t0 = AppMetric::KernelTime(SimDuration::from_micros(100));
        assert!((t1.error_vs(&t0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot compare")]
    fn mixed_kinds_rejected() {
        let _ = AppMetric::Mops(1.0).error_vs(&AppMetric::KernelTime(SimDuration::ZERO));
    }

    #[test]
    fn experiment_runs_sweep_in_order() {
        let exp = Experiment::new(
            ping_pong(2, 10, 64),
            base(),
            vec![SyncConfig::fixed_micros(100), SyncConfig::paper_dyn1()],
        );
        let r = exp.run();
        assert_eq!(r.outcomes.len(), 2);
        assert_eq!(r.outcomes[0].label, "100");
        assert_eq!(r.outcomes[1].label, "dyn 1.03:0.02");
        // Latency-bound ping-pong: the loose quantum is fast but wrong.
        assert!(r.outcomes[0].speedup > 1.0);
        assert!(r.outcomes[0].accuracy_error > 0.5);
        assert!(r.outcomes[0].sim_ratio > 1.0);
    }

    #[test]
    fn burst_adaptive_beats_fixed_ground_truth_accuracy_tradeoff() {
        let exp = Experiment::new(
            burst(4, 2_000_000, 2048),
            base(),
            vec![SyncConfig::fixed_micros(1000), SyncConfig::paper_dyn1()],
        );
        let r = exp.run();
        let fixed = &r.outcomes[0];
        let dyn1 = &r.outcomes[1];
        // The adaptive policy should be markedly more accurate than the
        // loose fixed quantum on a bursty workload.
        assert!(
            dyn1.accuracy_error < fixed.accuracy_error,
            "dyn error {} !< fixed error {}",
            dyn1.accuracy_error,
            fixed.accuracy_error
        );
        // And still faster than ground truth.
        assert!(dyn1.speedup > 1.0, "dyn speedup {}", dyn1.speedup);
    }

    #[test]
    fn paper_sweep_has_five_configs() {
        assert_eq!(paper_sweep().len(), 5);
    }
}
