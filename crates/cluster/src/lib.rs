//! The cluster simulator: node simulators + network controller + quantum
//! synchronization, exactly as assembled in the ISPASS 2008 paper.
//!
//! # Two engines
//!
//! * [`engine`] — the **deterministic meta-engine**. It is a discrete-event
//!   simulation *of the parallel simulation itself*, running on a modelled
//!   host clock: every node simulator advances its simulated time at a
//!   seeded, drifting rate; packets cross a central network controller;
//!   quantum barriers cost host time; stragglers are detected and delivered
//!   late precisely as §3 of the paper describes. Because the host clock is
//!   modelled, **speedup numbers are exactly reproducible** — same seed,
//!   same figure.
//! * [`parallel`] — the **threaded engine**: each node simulator runs on a
//!   real OS thread, synchronizes through real barriers, and wall-clock is
//!   measured with a real clock. It demonstrates that the technique works
//!   as an actual parallel program; its timings are machine-dependent.
//! * [`sharded`] — the **sharded engine**: N node simulators partitioned
//!   over M worker threads with a two-level tree barrier and a pooled,
//!   allocation-free packet path. It is the cluster-scale engine (256–1024
//!   nodes) and its functional results are bit-identical for every M.
//!
//! There is also [`optimistic`], a checkpoint/rollback engine that trades
//! conservative barriers for speculative re-execution, and
//! [`sharded_optimistic`] — the optimistic mechanism rebuilt on the sharded
//! substrate: per-shard checkpoint rings, barrier-leader GVT reduction,
//! rollback confined to the offending shard by a cascade bound, and the
//! adaptive conservative/optimistic [`HybridPolicy`].
//!
//! All six are driven through one entry point: the [`Sim`] builder.
//!
//! # Quick start
//!
//! ```
//! use aqs_cluster::{EngineKind, Sim};
//! use aqs_core::SyncConfig;
//! use aqs_node::{ProgramBuilder, Rank, Tag};
//!
//! // A 1-packet ping-pong between two nodes.
//! let ping = ProgramBuilder::new(Rank::new(0))
//!     .send(Rank::new(1), 64, Tag::new(0))
//!     .recv(Some(Rank::new(1)), Tag::new(0))
//!     .build();
//! let pong = ProgramBuilder::new(Rank::new(1))
//!     .recv(Some(Rank::new(0)), Tag::new(0))
//!     .send(Rank::new(0), 64, Tag::new(0))
//!     .build();
//!
//! let report = Sim::new(vec![ping, pong])
//!     .engine(EngineKind::Deterministic)
//!     .sync(SyncConfig::ground_truth())
//!     .seed(1)
//!     .run();
//! assert_eq!(report.stragglers.count(), 0); // Q ≤ T is straggler-free
//! ```
//!
//! Switch engines by changing one argument — `.engine(EngineKind::Threaded)`
//! runs the same workload on real threads. Attach a quantum-level flight
//! recorder with [`Sim::record`]; see [`sim`] for details.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod engine;
mod experiment;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod optimistic;
pub mod parallel;
mod progress;
mod result;
pub mod sharded;
pub mod sharded_optimistic;
pub mod sim;
pub mod snapshot;

pub use config::{BarrierCostModel, ClusterConfig};
pub use experiment::{
    app_metric, paper_sweep, run_workload, AppMetric, ConfigOutcome, Experiment, ExperimentResult,
};
pub use progress::ProgressRecorder;
pub use result::{NodeResult, RunResult};
pub use sharded::ShardedRunResult;
pub use sharded_optimistic::{HybridPolicy, ModeEvent, ShardedOptimisticRunResult};
pub use sim::{
    EngineDetail, EngineKind, RunReport, Sim, SimError, SimSwitch, SimulatedOutcome, SnapshotStep,
    WallClock,
};
pub use snapshot::SimSnapshot;
