//! The threaded parallel engine: one OS thread per node simulator.
//!
//! Where [`engine`](crate::engine) *models* the parallel simulation on a
//! deterministic host clock, this module *is* one: every node simulator
//! runs on its own thread, packets cross lock-free mailboxes, quantum
//! boundaries are an epoch-based [`LeaderBarrier`], and wall-clock is
//! measured with [`std::time::Instant`]. It demonstrates the paper's
//! architecture as an actual parallel program and powers the wall-clock
//! benchmarks.
//!
//! The hot path — routing a packet and retiring simulated ops — touches no
//! globally contended lock:
//!
//! * straggler statistics accumulate in per-thread [`StragglerStats`] only
//!   (a per-quantum delta for observability plus a run total) and are merged
//!   after the threads join — no mutex anywhere in the engine;
//! * mailboxes are lock-free MPSC lists ([`aqs_sync::Mailbox`]): producers
//!   push with one CAS — recycling nodes from a thread-local
//!   [`aqs_sync::MailboxPool`], so steady-state pushes allocate nothing —
//!   and the owning thread detaches the whole batch with one swap at its
//!   next scheduling point;
//! * packet counts (`np`, the adaptive policy's input signal) accumulate in
//!   a per-thread cache-padded slot that the barrier leader sums;
//! * the quantum handshake is a single epoch publication: the last thread
//!   to arrive advances the policy (it has exclusive access to the leader
//!   state — no policy mutex) and stores the new `q_end` before the epoch's
//!   release store, so `(epoch, q_end, stop)` become visible atomically.
//!   `q_end == u64::MAX` is the stop sentinel.
//!
//! Two things follow from using real time:
//!
//! * **Timing results are machine-dependent** (that is the point).
//! * **Functional results remain exact under the safe quantum**: with
//!   `Q ≤ T` a packet sent in quantum *k* cannot arrive before quantum
//!   *k + 1* starts, so no thread interleaving can create a straggler, and
//!   the simulated timeline equals the deterministic engine's bit for bit.
//!   With larger quanta, straggler timing depends on the actual race — as
//!   it does in the real system.
//!
//! # Examples
//!
//! ```
//! use aqs_cluster::{EngineKind, Sim};
//! use aqs_core::SyncConfig;
//! use aqs_node::{ProgramBuilder, Rank, Tag};
//!
//! let a = ProgramBuilder::new(Rank::new(0)).send(Rank::new(1), 64, Tag::new(0)).build();
//! let b = ProgramBuilder::new(Rank::new(1)).recv(Some(Rank::new(0)), Tag::new(0)).build();
//! let report = Sim::new(vec![a, b])
//!     .engine(EngineKind::Threaded)
//!     .sync(SyncConfig::ground_truth())
//!     .run();
//! assert_eq!(report.stragglers.count(), 0);
//! assert_eq!(report.messages_received, 1);
//! ```

use crate::sim::{EngineKind, SimError};
use crate::snapshot::ResumeSeed;
use aqs_core::{QuantumPolicy, SyncConfig};
use aqs_net::{
    ChaosOverlay, Destination, FatTreeFabric, LatencyMatrixSwitch, LinkLoad, NicModel, NodeId,
    StragglerStats,
};
use aqs_node::{
    Action, CpuModel, MessageId, MessageMeta, NodeExecutor, Program, Rank, RegionRecord, SendTarget,
};
use aqs_obs::{QuantumObs, Recorder};
use aqs_sync::{ArrivalTimes, CachePadded, LeaderBarrier, Mailbox, MailboxPool, PoolDepot};
use aqs_time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Switch models available to the threaded engine.
///
/// Only pure models are offered: their transit delay is a function of
/// `(src, dst, bytes, departure)` alone, so node threads can compute
/// arrivals without sharing mutable switch state — and call order cannot
/// change any result. [`aqs_net::StoreAndForwardSwitch`] is deliberately
/// absent — its per-egress queue would re-serialize every route call behind
/// a lock, and its result would depend on thread timing.
#[derive(Clone, Debug, Default)]
pub enum ParallelSwitch {
    /// Infinite bandwidth, zero transit delay (the paper's evaluation
    /// switch).
    #[default]
    Perfect,
    /// Fixed per-(src, dst) latency, as in the deterministic engine's
    /// [`LatencyMatrixSwitch`].
    LatencyMatrix(LatencyMatrixSwitch),
    /// The modeled fat-tree fabric: pure epoch-keyed transit (see
    /// [`FatTreeFabric`]), safe under any routing order.
    Fabric(FatTreeFabric),
    /// Chaos middleware over another pure model: the wrapped switch computes
    /// the base transit and the [`ChaosOverlay`] adds its seeded fault delay
    /// on top. The overlay is itself a pure function of
    /// `(src, dst, bytes, departure)`, so the determinism guarantee holds.
    Chaos(ChaosOverlay, Box<ParallelSwitch>),
}

impl ParallelSwitch {
    /// Extra delay beyond NIC latency for a frame from `src` to `dst` —
    /// mirrors [`aqs_net::SwitchModel::transit_delay`] for the pure models.
    #[inline]
    fn transit(&self, src: NodeId, dst: NodeId, bytes: u32, ingress: SimTime) -> SimDuration {
        match self {
            ParallelSwitch::Perfect => SimDuration::ZERO,
            ParallelSwitch::LatencyMatrix(m) => m.latency(src, dst),
            ParallelSwitch::Fabric(f) => f.transit(src, dst, bytes, ingress),
            ParallelSwitch::Chaos(overlay, inner) => {
                inner.transit(src, dst, bytes, ingress)
                    + overlay.extra_delay(src, dst, bytes, ingress)
            }
        }
    }
}

/// Configuration of a threaded run.
///
/// The `with_*` setters are **order-independent**: each one stores a single
/// field and derives nothing, so any permutation of the same calls builds
/// the same configuration.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Synchronization policy.
    pub sync: SyncConfig,
    /// NIC timing model.
    pub nic: NicModel,
    /// CPU timing model.
    pub cpu: CpuModel,
    /// Switch timing model.
    pub switch: ParallelSwitch,
    /// Real host nanoseconds of busy-work burned per simulated operation —
    /// emulates the execution cost of the node simulator itself. Zero runs
    /// the functional simulation at full speed.
    pub host_work_per_op: f64,
    /// Hard cap on quanta (guards against deadlocked workloads, which the
    /// threaded engine cannot otherwise detect). `u64::MAX` by default.
    pub max_quanta: u64,
    /// Forces the sharded engines to execute every node every quantum
    /// instead of consulting the active-set wake wheel. A debug/differential
    /// mode: the full sweep is the legacy pre-active-set behavior and the
    /// oracle baseline that active-set runs must match bit for bit. Ignored
    /// by engines without active-set scheduling.
    pub full_sweep: bool,
}

impl ParallelConfig {
    /// Creates a configuration with the paper-default NIC/CPU models, the
    /// perfect switch, and no busy-work.
    pub fn new(sync: SyncConfig) -> Self {
        Self {
            sync,
            nic: NicModel::paper_default(),
            cpu: CpuModel::default(),
            switch: ParallelSwitch::default(),
            host_work_per_op: 0.0,
            max_quanta: u64::MAX,
            full_sweep: false,
        }
    }

    /// Sets the busy-work factor (host ns per simulated op).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn with_host_work_per_op(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be >= 0, got {factor}"
        );
        self.host_work_per_op = factor;
        self
    }

    /// Sets the quantum cap.
    pub fn with_max_quanta(mut self, max: u64) -> Self {
        self.max_quanta = max;
        self
    }

    /// Sets the switch model.
    pub fn with_switch(mut self, switch: ParallelSwitch) -> Self {
        self.switch = switch;
        self
    }

    /// Forces the full-sweep (non-active-set) execution path in the sharded
    /// engines. See [`ParallelConfig::full_sweep`].
    pub fn with_full_sweep(mut self, full_sweep: bool) -> Self {
        self.full_sweep = full_sweep;
        self
    }
}

/// Per-node outcome of a threaded run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParallelNodeResult {
    /// Rank.
    pub rank: Rank,
    /// Simulated completion time.
    pub finish_sim: SimTime,
    /// Operations retired.
    pub ops: u64,
    /// Messages fully received.
    pub messages_received: u64,
    /// Closed timed regions.
    #[serde(skip)]
    pub regions: Vec<RegionRecord>,
}

/// Outcome of a threaded run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParallelRunResult {
    /// Real wall-clock the run took.
    pub wall: Duration,
    /// Simulated completion time (max across nodes).
    pub sim_end: SimTime,
    /// Quanta executed.
    pub total_quanta: u64,
    /// Packets routed.
    pub total_packets: u64,
    /// Straggler statistics.
    pub stragglers: StragglerStats,
    /// Per-node results.
    pub per_node: Vec<ParallelNodeResult>,
}

impl ParallelRunResult {
    /// Total messages received across nodes.
    pub fn messages_received_total(&self) -> u64 {
        self.per_node.iter().map(|n| n.messages_received).sum()
    }

    /// Wall-clock speedup of this run relative to `baseline`. A baseline
    /// too fast for the clock to resolve yields 0.0 rather than a division
    /// by zero.
    pub fn speedup_vs(&self, baseline: &ParallelRunResult) -> f64 {
        let base = baseline.wall.as_secs_f64();
        if base <= 0.0 {
            return 0.0;
        }
        base / self.wall.as_secs_f64().max(1e-9)
    }
}

/// A fragment in flight to one receiver.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    meta: MessageMeta,
    frag_index: u32,
    arrival: SimTime,
}

/// Stop sentinel published through `q_end`.
pub(crate) const Q_END_STOP: u64 = u64::MAX;

/// State only the barrier leader touches, via [`LeaderBarrier::arrive`] —
/// no mutex: exclusivity comes from the barrier protocol itself. Shared with
/// the sharded engine, whose tree-barrier leader runs the same policy step.
pub(crate) struct LeaderState<R> {
    pub(crate) policy: Box<dyn QuantumPolicy>,
    /// Quanta completed (including the stop round, matching the old
    /// centralized counter).
    pub(crate) quanta: u64,
    /// Packets routed over the whole run (sum of the per-thread slots).
    pub(crate) total_packets: u64,
    /// Start of the current quantum in sim ns (the previous `q_end_nanos`).
    pub(crate) q_start_nanos: u64,
    /// Current quantum end in sim ns, mirrored into `Shared::q_end`.
    pub(crate) q_end_nanos: u64,
    pub(crate) max_quanta: u64,
    /// Observability recorder. Leader-exclusive like the rest of this
    /// struct, so recording needs no lock and stays off the packet path.
    pub(crate) rec: R,
    /// Scratch lanes for sample assembly, reused across quanta.
    pub(crate) waits: Vec<u64>,
    pub(crate) lags: Vec<u64>,
    /// Per-link load merge scratch (sharded engine with a fabric switch and
    /// recording enabled; empty — and untouched — otherwise).
    pub(crate) link_load: LinkLoad,
    /// Per-shard active-node merge scratch (sharded engine with recording
    /// enabled; empty — and untouched — otherwise).
    pub(crate) shard_actives: Vec<u64>,
}

/// Per-thread per-quantum observability publication (written by the owning
/// thread before its barrier arrival, read only by that round's leader).
/// All zeros when recording is disabled.
#[derive(Default)]
struct ObsSlot {
    /// Idle tail this quantum in sim ns.
    vt_lag: AtomicU64,
    /// Stragglers this thread recorded this quantum.
    s_count: AtomicU64,
    /// Largest straggler delay this thread saw this quantum, in sim ns.
    s_max: AtomicU64,
}

/// Per-thread accounting that used to live behind global locks. Entirely
/// thread-private: the quantum delta feeds the observability slots, the run
/// total is handed back when the thread joins — no shared mutation at all.
#[derive(Default)]
struct ThreadCtx {
    /// Stragglers recorded in the current quantum (folded into `run_stragglers`
    /// at each boundary).
    stragglers: StragglerStats,
    /// Run-total straggler tally, returned at thread exit.
    run_stragglers: StragglerStats,
    /// Packets routed in the current quantum (the policy's `np` signal).
    quantum_packets: u64,
    /// Free-list of mailbox nodes this thread pushes with; drained nodes
    /// recycle into the draining thread's pool, so in steady state the
    /// packet path performs no heap allocation.
    pool: MailboxPool<InFlight>,
}

/// Shared state across node threads.
struct Shared<R> {
    nic: NicModel,
    switch: ParallelSwitch,
    /// Wall-clock origin for barrier-wait timestamps.
    start: Instant,
    /// Per-thread observability slots (see [`ObsSlot`]).
    obs_slots: Vec<CachePadded<ObsSlot>>,
    /// Per-node published simulated position (ns), for straggler checks.
    sim_pos: Vec<CachePadded<AtomicU64>>,
    /// Per-node incoming fragment queues (lock-free MPSC).
    mailboxes: Vec<Mailbox<InFlight>>,
    /// Shared overflow depot recirculating mailbox nodes between the node
    /// threads' pools: under directional traffic (incast) the receiver's
    /// overflow feeds the senders' refills instead of being freed.
    depot: Arc<PoolDepot<InFlight>>,
    /// Per-thread packets routed this quantum; the leader sums these into
    /// `np` for the policy and into the run total.
    np_slots: Vec<CachePadded<AtomicU64>>,
    /// End of the current quantum in sim ns; `Q_END_STOP` means the run is
    /// over. Written by the leader before the epoch release-store, read by
    /// followers after their epoch acquire-load — the epoch is the
    /// handshake, so plain relaxed accesses suffice.
    q_end: AtomicU64,
    /// Number of nodes whose program has finished.
    done: AtomicU64,
    /// Deadlock-guard flag (checked after join, where panicking is safe).
    overflow: AtomicBool,
    barrier: LeaderBarrier<LeaderState<R>>,
}

impl<R: Recorder> Shared<R> {
    /// Routes one fragment from `src`, delivering into mailboxes and doing
    /// straggler accounting against the receivers' published positions.
    ///
    /// Arrival is computed exactly as the deterministic engine's
    /// `NetworkController::route`: NIC earliest arrival plus switch transit
    /// for this `(src, dst, bytes)`.
    #[allow(clippy::too_many_arguments)]
    fn route(
        &self,
        ctx: &mut ThreadCtx,
        src: usize,
        dst: Destination,
        bytes: u32,
        departure: SimTime,
        meta: MessageMeta,
        frag_index: u32,
    ) {
        let base = self.nic.earliest_arrival(departure);
        match dst {
            Destination::Unicast(d) => self.deliver(
                ctx,
                src,
                d.index(),
                bytes,
                departure,
                base,
                meta,
                frag_index,
            ),
            Destination::Broadcast => {
                for t in 0..self.sim_pos.len() {
                    if t != src {
                        self.deliver(ctx, src, t, bytes, departure, base, meta, frag_index);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn deliver(
        &self,
        ctx: &mut ThreadCtx,
        src: usize,
        t: usize,
        bytes: u32,
        departure: SimTime,
        base: SimTime,
        meta: MessageMeta,
        frag_index: u32,
    ) {
        ctx.quantum_packets += 1;
        let arrival = base
            + self.switch.transit(
                NodeId::new(src as u32),
                NodeId::new(t as u32),
                bytes,
                departure,
            );
        let pos = SimTime::from_nanos(self.sim_pos[t].load(Ordering::Acquire));
        let eff = arrival.max(pos);
        if eff > arrival {
            ctx.stragglers.record(eff - arrival);
        }
        self.mailboxes[t].push_pooled(
            InFlight {
                meta,
                frag_index,
                arrival: eff,
            },
            &mut ctx.pool,
        );
    }
}

/// Initial state of one node thread: a fresh executor at sim time zero, or
/// a restored executor at the snapshot's cut point.
struct NodeInit {
    exec: NodeExecutor,
    sim: SimTime,
    msg_seq: u64,
    pending: Option<SimDuration>,
    done: bool,
}

/// Routes the snapshot's cut-in-flight fragments ahead of the first resumed
/// quantum: every receiver copy gets `arrival = max(computed arrival,
/// q_start)` — the deterministic analog of what the live engine would have
/// delivered, exact under the safe quantum (arrivals can never precede the
/// cut when `Q ≤ T`). Returns per-node injected fragments, the delivered
/// copy count (folded into the run's packet total), and any straggler
/// records the snapping produced.
fn route_seed_frags(
    seed: &ResumeSeed,
    nic: &NicModel,
    switch: &ParallelSwitch,
    n: usize,
) -> Result<(Vec<Vec<InFlight>>, u64, StragglerStats), SimError> {
    let mut injected: Vec<Vec<InFlight>> = (0..n).map(|_| Vec::new()).collect();
    let mut count = 0u64;
    let mut stragglers = StragglerStats::default();
    for pf in &seed.frags {
        let src = pf.src as usize;
        if src >= n {
            return Err(SimError::snapshot_format(format!(
                "in-flight fragment from node {src}, but the cluster has {n} nodes"
            )));
        }
        let base = nic.earliest_arrival(pf.frag.departure);
        let deliver_to =
            |t: usize, injected: &mut Vec<Vec<InFlight>>, stragglers: &mut StragglerStats| {
                let arrival = base
                    + switch.transit(
                        NodeId::new(src as u32),
                        NodeId::new(t as u32),
                        pf.frag.bytes,
                        pf.frag.departure,
                    );
                let eff = arrival.max(seed.q_start);
                if eff > arrival {
                    stragglers.record(eff - arrival);
                }
                injected[t].push(InFlight {
                    meta: pf.frag.meta,
                    frag_index: pf.frag.frag_index,
                    arrival: eff,
                });
            };
        match pf.frag.dst {
            Some(r) => {
                let t = r as usize;
                if t >= n {
                    return Err(SimError::snapshot_format(format!(
                        "in-flight fragment for node {t}, but the cluster has {n} nodes"
                    )));
                }
                deliver_to(t, &mut injected, &mut stragglers);
                count += 1;
            }
            None => {
                for t in (0..n).filter(|&t| t != src) {
                    deliver_to(t, &mut injected, &mut stragglers);
                    count += 1;
                }
            }
        }
    }
    Ok((injected, count, stragglers))
}

/// Threaded engine entry point with an explicit [`Recorder`]: the unified
/// `Sim` builder dispatches here (the historical `run_parallel` free
/// function was deleted after five PRs of deprecation). The recorder lives
/// in the leader state, so recording adds no lock anywhere — per-thread
/// slots are published before the barrier arrival and merged by that
/// round's leader.
///
/// With `resume`, the run starts at the snapshot's cut instead of time
/// zero: executors, RNG-independent pending work, the policy's adaptive
/// state, and the cut's in-flight fragments are all restored, and the run
/// counters continue from their captured values.
pub(crate) fn run_parallel_impl<R: Recorder>(
    programs: Vec<Program>,
    config: &ParallelConfig,
    recorder: R,
    resume: Option<&ResumeSeed>,
) -> Result<(ParallelRunResult, R), SimError> {
    assert!(programs.len() >= 2, "a cluster needs at least 2 nodes");
    for (i, p) in programs.iter().enumerate() {
        assert_eq!(p.rank().index(), i, "program {i} is for {}", p.rank());
    }
    let n = programs.len();
    if let Some(s) = resume {
        if s.nodes.len() != n {
            return Err(SimError::snapshot_format(format!(
                "snapshot has {} nodes, simulation has {n}",
                s.nodes.len()
            )));
        }
    }
    let mut policy = config.sync.build();
    let q0 = policy.initial_quantum();
    if let Some(s) = resume {
        policy
            .load_state(&s.policy_state)
            .map_err(SimError::snapshot_format)?;
    }
    let q_start = resume.map_or(SimTime::ZERO, |s| s.q_start);
    let q_end0 = resume.map_or(q0.as_nanos(), |s| (s.q_start + s.q_len).as_nanos());
    let (injected, inject_count, inject_stragglers) = match resume {
        Some(s) => route_seed_frags(s, &config.nic, &config.switch, n)?,
        None => (Vec::new(), 0, StragglerStats::default()),
    };
    let mut inits = Vec::with_capacity(n);
    let mut n_done = 0u64;
    for (i, program) in programs.into_iter().enumerate() {
        inits.push(match resume {
            Some(s) => {
                let ns = &s.nodes[i];
                if ns.done {
                    n_done += 1;
                }
                NodeInit {
                    exec: NodeExecutor::from_state(program, config.cpu, ns.exec.clone())
                        .map_err(|e| SimError::snapshot_format(format!("node {i}: {e}")))?,
                    sim: s.q_start,
                    msg_seq: ns.msg_seq,
                    pending: ns.pending,
                    done: ns.done,
                }
            }
            None => NodeInit {
                exec: NodeExecutor::new(program, config.cpu),
                sim: SimTime::ZERO,
                msg_seq: 0,
                pending: None,
                done: false,
            },
        });
    }
    let leader = LeaderState {
        policy,
        quanta: resume.map_or(0, |s| s.quanta),
        total_packets: resume.map_or(0, |s| s.total_packets) + inject_count,
        q_start_nanos: q_start.as_nanos(),
        q_end_nanos: q_end0,
        max_quanta: config.max_quanta,
        rec: recorder,
        waits: Vec::with_capacity(n),
        lags: Vec::with_capacity(n),
        link_load: LinkLoad::default(),
        shard_actives: Vec::new(),
    };
    let start = Instant::now();
    let shared = Shared {
        nic: config.nic,
        switch: config.switch.clone(),
        start,
        obs_slots: (0..n)
            .map(|_| CachePadded::new(ObsSlot::default()))
            .collect(),
        sim_pos: (0..n)
            .map(|_| CachePadded::new(AtomicU64::new(q_start.as_nanos())))
            .collect(),
        mailboxes: (0..n).map(|_| Mailbox::new()).collect(),
        depot: Arc::new(PoolDepot::new()),
        np_slots: (0..n)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect(),
        q_end: AtomicU64::new(q_end0),
        done: AtomicU64::new(n_done),
        overflow: AtomicBool::new(false),
        barrier: LeaderBarrier::new(n, leader),
    };
    let mut inject_pool = MailboxPool::default();
    for (t, frags) in injected.into_iter().enumerate() {
        for f in frags {
            shared.mailboxes[t].push_pooled(f, &mut inject_pool);
        }
    }
    let joined: Vec<(ParallelNodeResult, StragglerStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = inits
            .into_iter()
            .enumerate()
            .map(|(i, init)| {
                let shared = &shared;
                scope.spawn(move || node_thread(i, init, config, shared))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    });
    if shared.overflow.load(Ordering::Acquire) {
        return Err(SimError::QuantumCapExceeded {
            engine: EngineKind::Threaded,
            max_quanta: config.max_quanta,
        });
    }
    let wall = start.elapsed();
    // Merge the per-thread run totals in deterministic (node) order — the
    // histogram merge is commutative anyway, but determinism is free here.
    let mut stragglers = resume.map_or_else(StragglerStats::default, |s| s.stragglers);
    stragglers.merge(&inject_stragglers);
    let mut results = Vec::with_capacity(joined.len());
    for (node, thread_stragglers) in joined {
        stragglers.merge(&thread_stragglers);
        results.push(node);
    }
    let sim_end = results
        .iter()
        .map(|r| r.finish_sim)
        .max()
        .expect("at least two nodes");
    let leader = shared.barrier.into_state();
    let result = ParallelRunResult {
        wall,
        sim_end,
        total_quanta: leader.quanta,
        total_packets: leader.total_packets,
        stragglers,
        per_node: results,
    };
    Ok((result, leader.rec))
}

/// Burns approximately `ns` nanoseconds of real CPU time.
pub(crate) fn busy_work(ns: f64) {
    if ns < 1.0 {
        return;
    }
    let deadline = Instant::now() + Duration::from_nanos(ns as u64);
    let mut x = 0x9E3779B97F4A7C15u64;
    while Instant::now() < deadline {
        // A few hundred cheap iterations between clock reads.
        for _ in 0..256 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        std::hint::black_box(x);
    }
}

/// Runs one node simulator to completion; returns its result plus the
/// thread's run-total straggler tally (merged by the caller after join).
fn node_thread<R: Recorder>(
    i: usize,
    init: NodeInit,
    config: &ParallelConfig,
    shared: &Shared<R>,
) -> (ParallelNodeResult, StragglerStats) {
    let NodeInit {
        mut exec,
        mut sim,
        mut msg_seq,
        pending: pending0,
        done,
    } = init;
    let mut ctx = ThreadCtx {
        pool: MailboxPool::with_depot(
            MailboxPool::<InFlight>::DEFAULT_CAP,
            Arc::clone(&shared.depot),
        ),
        ..ThreadCtx::default()
    };
    let mut inbox: Vec<InFlight> = Vec::new();
    let mut done_reported = done;
    /// An op that did not fit in the previous quantum.
    struct Pending {
        remaining: SimDuration,
    }
    let mut pending: Option<Pending> = pending0.map(|remaining| Pending { remaining });
    // The published position is clamped to the current quantum boundary:
    // a multi-quantum op (e.g. serializing a jumbo fragment) runs `sim`
    // ahead of `q_end`, but that run-ahead is provisional — letting peers
    // observe it would count spurious, schedule-dependent stragglers even
    // under the safe quantum. Committed position never exceeds the quantum.
    let publish = |t: SimTime, cap: SimTime| {
        shared.sim_pos[i].store(t.min(cap).as_nanos(), Ordering::Release)
    };
    let mut q_end = SimTime::from_nanos(shared.q_end.load(Ordering::Acquire));
    loop {
        // Observability: sim position where this node stopped doing useful
        // work and jumped to the boundary (0 lag if busy to the edge).
        let mut lag_ns = 0u64;
        // Run this node up to the quantum boundary.
        while sim < q_end {
            if let Some(p) = pending.take() {
                let step = p.remaining.min(q_end - sim);
                sim += step;
                publish(sim, q_end);
                if step < p.remaining {
                    pending = Some(Pending {
                        remaining: p.remaining - step,
                    });
                    break; // quantum boundary reached mid-op
                }
                continue;
            }
            drain_mailbox(&mut exec, &shared.mailboxes[i], &mut inbox, &mut ctx.pool);
            match exec.next_action(sim) {
                Action::Advance { dur, ops, idle } => {
                    // The executor consumed the op; the host work for it is
                    // burned up front, the simulated duration is spread over
                    // as many quanta as it needs via `pending`.
                    if !idle && config.host_work_per_op > 0.0 && ops > 0 {
                        busy_work(ops as f64 * config.host_work_per_op);
                    }
                    pending = Some(Pending { remaining: dur });
                }
                Action::Send { dst, bytes, tag } => {
                    let dest = match dst {
                        SendTarget::Rank(r) => {
                            Destination::Unicast(aqs_net::NodeId::new(r.as_u32()))
                        }
                        SendTarget::All => Destination::Broadcast,
                    };
                    let frag_count = shared.nic.fragment_count(bytes);
                    let meta = MessageMeta {
                        id: MessageId {
                            src: exec.rank(),
                            seq: msg_seq,
                        },
                        tag,
                        bytes,
                        frag_count,
                    };
                    msg_seq += 1;
                    for k in 0..frag_count {
                        let sz = shared.nic.fragment_size(bytes, k);
                        let ser = shared.nic.serialization_delay(sz);
                        sim += ser;
                        publish(sim, q_end);
                        shared.route(&mut ctx, i, dest, sz, sim, meta, k);
                    }
                }
                Action::WaitUntil(t) => {
                    if R::ENABLED && t >= q_end {
                        lag_ns = (q_end - sim).as_nanos();
                    }
                    sim = t.min(q_end);
                    publish(sim, q_end);
                    if t >= q_end {
                        break;
                    }
                }
                Action::Blocked => {
                    // Nothing deliverable yet: idle to the quantum boundary
                    // (the OS idle loop) and meet the barrier; deliveries
                    // land in the mailbox meanwhile.
                    if R::ENABLED {
                        lag_ns = (q_end - sim).as_nanos();
                    }
                    sim = q_end;
                    publish(sim, q_end);
                    break;
                }
                Action::Finished => {
                    if !done_reported {
                        done_reported = true;
                        shared.done.fetch_add(1, Ordering::AcqRel);
                    }
                    if R::ENABLED {
                        lag_ns = (q_end - sim).as_nanos();
                    }
                    sim = q_end;
                    publish(sim, q_end);
                    break;
                }
            }
        }
        sim = sim.max(q_end);
        publish(sim, q_end);
        match next_quantum(shared, &mut ctx, i, lag_ns) {
            Some(qe) => q_end = qe,
            None => break,
        }
    }
    let node = ParallelNodeResult {
        rank: exec.rank(),
        finish_sim: exec.finish_time().unwrap_or(sim),
        ops: exec.ops_executed(),
        messages_received: exec.messages_received(),
        regions: exec.regions().to_vec(),
    };
    (node, ctx.run_stragglers)
}

/// Meets the quantum barrier; the leader advances the policy and publishes
/// `(q_end, stop)` through the epoch handshake. Returns the new quantum end,
/// or `None` when the run is over (all programs done, or the deadlock guard
/// tripped).
fn next_quantum<R: Recorder>(
    shared: &Shared<R>,
    ctx: &mut ThreadCtx,
    i: usize,
    lag_ns: u64,
) -> Option<SimTime> {
    // Publish this thread's per-quantum accounting. The barrier arrival
    // provides the release/acquire edge to the leader, so relaxed stores
    // suffice.
    shared.np_slots[i].store(ctx.quantum_packets, Ordering::Relaxed);
    // Keep one quantum's worth of this node's sends local; donate drain
    // surplus to the depot (see the sharded engine's POOL_RETAIN_FLOOR for
    // the rationale — per-node pools use a smaller floor).
    ctx.pool.set_retain((ctx.quantum_packets as usize).max(32));
    ctx.quantum_packets = 0;
    if R::ENABLED {
        // Published before the straggler merge below resets `ctx`.
        let slot = &shared.obs_slots[i];
        slot.vt_lag.store(lag_ns, Ordering::Relaxed);
        slot.s_count
            .store(ctx.stragglers.count(), Ordering::Relaxed);
        slot.s_max
            .store(ctx.stragglers.max_delay().as_nanos(), Ordering::Relaxed);
    }
    if ctx.stragglers.count() > 0 {
        // Fold the quantum delta into the thread-private run total — no
        // shared state touched; the caller merges totals after join.
        ctx.run_stragglers.merge(&ctx.stragglers);
        ctx.stragglers = StragglerStats::default();
    }
    if R::ENABLED {
        let now_ns = shared.start.elapsed().as_nanos() as u64;
        shared.barrier.arrive_timed(i, now_ns, |leader, ts| {
            leader_step(shared, leader, Some(ts))
        });
    } else {
        shared
            .barrier
            .arrive(|leader| leader_step(shared, leader, None));
    }
    // Ordered after the leader's stores by the epoch acquire inside arrive.
    let q_end = shared.q_end.load(Ordering::Relaxed);
    if q_end == Q_END_STOP {
        None
    } else {
        Some(SimTime::from_nanos(q_end))
    }
}

/// The leader's quantum-boundary work: record the observability sample for
/// the quantum that just ended (when enabled), then advance the policy and
/// publish `(q_end, stop)`. Runs with exclusive access to `leader`.
fn leader_step<R: Recorder>(
    shared: &Shared<R>,
    leader: &mut LeaderState<R>,
    ts: Option<ArrivalTimes<'_>>,
) {
    let np: u64 = shared
        .np_slots
        .iter()
        .map(|s| s.load(Ordering::Relaxed))
        .sum();
    if R::ENABLED {
        let n = shared.sim_pos.len();
        let ts = ts.expect("recording enabled without timed arrival");
        // The leader arrived last, so the latest stamp is "now": each
        // thread's barrier wait is the gap to it.
        let latest = (0..n).map(|k| ts.get(k)).max().unwrap_or(0);
        leader.waits.clear();
        leader.lags.clear();
        let mut s_count = 0u64;
        let mut s_max = 0u64;
        for k in 0..n {
            leader.waits.push(latest.saturating_sub(ts.get(k)));
            let slot = &shared.obs_slots[k];
            leader.lags.push(slot.vt_lag.load(Ordering::Relaxed));
            s_count += slot.s_count.load(Ordering::Relaxed);
            s_max = s_max.max(slot.s_max.load(Ordering::Relaxed));
        }
        leader.rec.record_quantum(&QuantumObs {
            index: leader.quanta,
            start: SimTime::from_nanos(leader.q_start_nanos),
            len: SimDuration::from_nanos(leader.q_end_nanos - leader.q_start_nanos),
            packets: np,
            active_nodes: n as u64,
            stragglers: s_count,
            max_straggler_delay: SimDuration::from_nanos(s_max),
            barrier_wait_ns: &leader.waits,
            vt_lag_ns: &leader.lags,
        });
    }
    leader.quanta += 1;
    leader.total_packets += np;
    let all_done = shared.done.load(Ordering::Acquire) as usize == shared.sim_pos.len();
    if all_done {
        shared.q_end.store(Q_END_STOP, Ordering::Relaxed);
    } else if leader.quanta > leader.max_quanta {
        // Cannot panic while peers wait on the barrier — flag and stop.
        shared.overflow.store(true, Ordering::Relaxed);
        shared.q_end.store(Q_END_STOP, Ordering::Relaxed);
    } else {
        #[allow(unused_mut)]
        let mut policy_np = np;
        #[cfg(feature = "fault-inject")]
        if crate::fault::armed(crate::fault::Fault::LeaderNpSkip) {
            // The recorded trace above keeps the true np; only the policy's
            // view forgets node 0's packets.
            policy_np -= shared.np_slots[0].load(Ordering::Relaxed);
        }
        let next = leader.policy.next_quantum(policy_np);
        leader.q_start_nanos = leader.q_end_nanos;
        leader.q_end_nanos += next.as_nanos();
        shared.q_end.store(leader.q_end_nanos, Ordering::Relaxed);
    }
}

/// Drains the node's mailbox into the reusable `inbox` scratch buffer
/// (capacity persists across quanta) and delivers every fragment. Drained
/// nodes are recycled into `pool` for the thread's next pushes.
fn drain_mailbox(
    exec: &mut NodeExecutor,
    mailbox: &Mailbox<InFlight>,
    inbox: &mut Vec<InFlight>,
    pool: &mut MailboxPool<InFlight>,
) {
    mailbox.drain_into_pooled(inbox, pool);
    for f in inbox.drain(..) {
        exec.deliver_fragment(f.meta, f.frag_index, f.arrival);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::sim::Sim;
    use aqs_node::{ProgramBuilder, RegionId, Tag};
    use aqs_obs::NullRecorder;
    use aqs_workloads::{burst, ping_pong};

    fn cfg(sync: SyncConfig) -> ParallelConfig {
        ParallelConfig::new(sync).with_max_quanta(20_000_000)
    }

    /// Unrecorded engine run with an owned result (equivalence with the
    /// `Sim` builder is pinned in `tests/sim_builder.rs`).
    fn par(programs: Vec<Program>, config: &ParallelConfig) -> ParallelRunResult {
        match run_parallel_impl(programs, config, NullRecorder, None) {
            Ok((r, _)) => r,
            Err(e) => panic!("{e}"),
        }
    }

    #[test]
    fn ping_pong_completes() {
        let spec = ping_pong(2, 5, 64);
        let r = par(spec.programs, &cfg(SyncConfig::ground_truth()));
        assert_eq!(r.messages_received_total(), 10);
        assert_eq!(r.stragglers.count(), 0, "safe quantum must be race-free");
        assert_eq!(r.total_packets, 10);
        assert!(r.sim_end > SimTime::ZERO);
    }

    #[test]
    fn speedup_guards_zero_baseline() {
        let spec = ping_pong(2, 1, 64);
        let mut a = par(spec.programs.clone(), &cfg(SyncConfig::ground_truth()));
        let b = par(spec.programs, &cfg(SyncConfig::ground_truth()));
        assert!(b.speedup_vs(&a).is_finite());
        a.wall = Duration::ZERO;
        assert_eq!(b.speedup_vs(&a), 0.0, "zero baseline must not divide");
    }

    #[test]
    fn safe_quantum_matches_deterministic_engine_functionally() {
        // Under Q <= T both engines must produce the identical simulated
        // timeline (no stragglers → no race-dependent timing).
        let spec = burst(4, 50_000, 1024);
        let report = Sim::new(spec.programs.clone())
            .config(ClusterConfig::new(SyncConfig::ground_truth()).with_seed(1))
            .run();
        let det = report.detail.as_deterministic().expect("det engine");
        let par = par(spec.programs, &cfg(SyncConfig::ground_truth()));
        assert_eq!(par.sim_end, det.sim_end, "simulated timelines must agree");
        assert_eq!(
            par.messages_received_total(),
            det.per_node
                .iter()
                .map(|n| n.messages_received)
                .sum::<u64>()
        );
        assert_eq!(par.total_packets, det.total_packets);
    }

    #[test]
    fn adaptive_policy_reduces_quanta() {
        let mk = |r: u32| {
            let peer = 1 - r;
            let mut b = ProgramBuilder::new(Rank::new(r)).compute(2_000_000);
            if r == 0 {
                b = b.send(Rank::new(peer), 64, Tag::new(0));
            } else {
                b = b.recv(Some(Rank::new(peer)), Tag::new(0));
            }
            b.compute(2_000_000).build()
        };
        let programs = vec![mk(0), mk(1)];
        let truth = par(programs.clone(), &cfg(SyncConfig::ground_truth()));
        let dynr = par(programs, &cfg(SyncConfig::paper_dyn1()));
        assert!(
            dynr.total_quanta < truth.total_quanta / 5,
            "adaptive should need far fewer quanta: {} vs {}",
            dynr.total_quanta,
            truth.total_quanta
        );
    }

    #[test]
    fn large_quantum_creates_stragglers_in_real_races() {
        let spec = ping_pong(2, 50, 64);
        let r = par(spec.programs, &cfg(SyncConfig::fixed_micros(1000)));
        assert!(
            r.stragglers.count() > 0,
            "latency-bound ping-pong must straggle"
        );
        assert_eq!(
            r.messages_received_total(),
            100,
            "stragglers must not lose packets"
        );
    }

    #[test]
    fn many_nodes_threads_complete() {
        let spec = burst(16, 10_000, 512);
        let r = par(spec.programs, &cfg(SyncConfig::paper_dyn2()));
        assert_eq!(r.per_node.len(), 16);
        assert!(r.per_node.iter().all(|n| n.finish_sim > SimTime::ZERO));
    }

    #[test]
    fn busy_work_slows_wall_clock() {
        let spec = burst(2, 2_000_000, 512);
        let fast = par(spec.programs.clone(), &cfg(SyncConfig::fixed_micros(1000)));
        let slow = par(
            spec.programs,
            &cfg(SyncConfig::fixed_micros(1000)).with_host_work_per_op(50.0),
        );
        assert!(
            slow.wall > fast.wall,
            "busy work should cost wall time: {:?} vs {:?}",
            slow.wall,
            fast.wall
        );
    }

    #[test]
    fn regions_are_captured() {
        let spec = ping_pong(2, 3, 64);
        let r = par(spec.programs, &cfg(SyncConfig::ground_truth()));
        assert!(r.per_node[0]
            .regions
            .iter()
            .any(|reg| reg.region == RegionId::KERNEL));
    }

    #[test]
    fn latency_matrix_switch_matches_deterministic_engine() {
        // The bytes/switch-transit path must be identical in both engines
        // (this is the bugfix for `route` discarding its `bytes` argument
        // and skipping the switch model entirely).
        use crate::sim::SimSwitch;
        let spec = ping_pong(2, 20, 4096);
        let matrix = LatencyMatrixSwitch::uniform(2, SimDuration::from_micros(3));
        let det = Sim::new(spec.programs.clone())
            .config(ClusterConfig::new(SyncConfig::ground_truth()).with_seed(7))
            .switch(SimSwitch::LatencyMatrix(matrix.clone()))
            .run();
        let par = par(
            spec.programs,
            &cfg(SyncConfig::ground_truth()).with_switch(ParallelSwitch::LatencyMatrix(matrix)),
        );
        assert_eq!(
            par.sim_end, det.sim_end,
            "switch transit must shift both timelines equally"
        );
        assert_eq!(par.total_packets, det.total_packets);
        assert_eq!(par.stragglers.count(), 0);
    }

    #[test]
    fn flight_recorder_matches_run_totals_and_null_run() {
        use aqs_obs::{FlightRecorder, ObsConfig};
        let spec = burst(4, 50_000, 1024);
        let (r, fr) = run_parallel_impl(
            spec.programs.clone(),
            &cfg(SyncConfig::ground_truth()),
            FlightRecorder::new(4, ObsConfig::new()),
            None,
        )
        .expect("run succeeds");
        assert_eq!(fr.total_packets(), r.total_packets);
        assert_eq!(fr.total_quanta(), r.total_quanta);
        assert_eq!(fr.total_stragglers(), r.stragglers.count());
        // Under the safe quantum the recorded run's simulated outcome is
        // bit-identical to the unrecorded one.
        let null = par(spec.programs, &cfg(SyncConfig::ground_truth()));
        assert_eq!(null.sim_end, r.sim_end);
        assert_eq!(null.total_quanta, r.total_quanta);
        assert_eq!(null.total_packets, r.total_packets);
        // Barrier waits are real time: at least one thread in some quantum
        // waited a nonzero interval.
        assert!(fr.barrier_wait_hist().count() > 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn quantum_cap_catches_deadlock() {
        let p0 = ProgramBuilder::new(Rank::new(0))
            .recv(Some(Rank::new(1)), Tag::new(0))
            .build();
        let p1 = ProgramBuilder::new(Rank::new(1)).compute(10).build();
        let _ = par(
            vec![p0, p1],
            &ParallelConfig::new(SyncConfig::fixed_micros(1000)).with_max_quanta(500),
        );
    }
}
