//! Quantum-edge snapshots of a running simulation.
//!
//! A snapshot captures the *entire* dynamic state of a run at the cut point
//! of a quantum barrier — node executors (program counters, mailboxes,
//! region timing), per-node RNG streams and host-speed state, NIC-serialized
//! fragments not yet departed, fragments in host flight towards the central
//! controller, the quantum policy's adaptive state, and the whole-run
//! counters (packets, stragglers, quanta). Resuming from a snapshot is
//! **bit-identical** to never having stopped: the deterministic engine
//! reproduces the uninterrupted run exactly, and every parallel engine
//! reproduces the uninterrupted functional outcome under a safe quantum.
//!
//! The wire format is a little-endian binary frame:
//!
//! ```text
//! [magic "AQSSNAP1" | version u32 | payload_len u64 | checksum u64 | payload]
//! ```
//!
//! The checksum is FNV-1a over the payload; the payload opens with a
//! *spec fingerprint* — a hash of the workload and configuration the
//! snapshot was taken under — so a snapshot can never be resumed against a
//! different simulation. Every per-node RNG stream carries a probe word
//! (the next draw of the captured stream) that detects skipped or rewound
//! streams even when the bytes themselves are plausible.

use crate::sim::SimError;
use aqs_net::StragglerStats;
use aqs_node::{
    AssemblingState, ExecutorState, HostSpeedState, MailboxState, MessageId, MessageMeta, Rank,
    ReadyState, RegionId, Tag,
};
use aqs_obs::{Log2Histogram, LOG2_BUCKETS};
use aqs_rng::{Rng, RngState};
use aqs_time::{HostTime, SimDuration, SimTime};

/// Wire-format magic, first 8 bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"AQSSNAP1";
/// Wire-format version this build writes and the only one it accepts.
pub const SNAPSHOT_VERSION: u32 = 1;

/// FNV-1a 64-bit hash (used for both the payload checksum and the spec
/// fingerprint).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One NIC-serialized fragment (either still queued at its sender or in
/// host flight towards the controller).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct FragSnap {
    /// Simulated departure time from the sending NIC.
    pub departure: SimTime,
    /// Destination: `Some(rank)` for unicast, `None` for broadcast.
    pub dst: Option<u32>,
    /// Fragment size in bytes.
    pub bytes: u32,
    /// Message metadata (identity, tag, total size, fragment count).
    pub meta: MessageMeta,
    /// Fragment index within the message.
    pub frag_index: u32,
}

/// A fragment in host flight between a sending simulator and the central
/// controller at capture time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct InFlightSnap {
    /// Host time at which the fragment reaches the controller.
    pub due_host: HostTime,
    /// Sending node.
    pub src: u32,
    /// The fragment itself.
    pub frag: FragSnap,
}

/// Whole-run straggler statistics at capture time, in raw parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct StragglerSnap {
    pub count: u64,
    pub total: SimDuration,
    pub max: SimDuration,
    pub hist_counts: Vec<u64>,
    pub hist_sum: u64,
    pub hist_max: u64,
}

impl StragglerSnap {
    pub(crate) fn capture(s: &StragglerStats) -> Self {
        Self {
            count: s.count(),
            total: s.total_delay(),
            max: s.max_delay(),
            hist_counts: s.delay_hist().buckets().to_vec(),
            hist_sum: s.delay_hist().sum(),
            hist_max: s.delay_hist().max(),
        }
    }

    pub(crate) fn restore(&self) -> Result<StragglerStats, SimError> {
        let counts: [u64; LOG2_BUCKETS] = self
            .hist_counts
            .clone()
            .try_into()
            .map_err(|_| SimError::snapshot_format("straggler histogram bucket count"))?;
        let hist = Log2Histogram::from_parts(counts, self.hist_sum, self.hist_max)
            .ok_or_else(|| SimError::snapshot_format("straggler histogram overflow"))?;
        StragglerStats::from_parts(self.count, self.total, self.max, hist)
            .ok_or_else(|| SimError::snapshot_format("straggler count/histogram mismatch"))
    }
}

/// Everything captured about one node simulator.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct NodeSnap {
    /// Executor state (program counter, mailbox, regions, counters).
    pub exec: ExecutorState,
    /// Host-speed state (RNG stream, drift, jitter).
    pub speed: HostSpeedState,
    /// Probe word: the next `u64` the captured RNG stream would produce.
    pub rng_probe: u64,
    /// Next outgoing message sequence number.
    pub msg_seq: u64,
    /// Remaining non-interruptible work, if an op was cut mid-execution.
    pub pending: Option<(SimDuration, bool)>,
    /// NIC-serialized fragments that have not yet departed, in queue order.
    pub outgoing: Vec<FragSnap>,
    /// The program already finished.
    pub done: bool,
    /// Host time the program finished at, if it did.
    pub finish_host: Option<HostTime>,
    /// Last poll returned `Blocked` with no candidate message.
    pub blocked_no_candidate: bool,
}

/// The full captured state of a run at a quantum edge.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct SnapshotBody {
    /// Spec fingerprint the snapshot was taken under.
    pub fingerprint: u64,
    /// Completed quanta at capture (the cut lies after quantum `quanta-1`).
    pub quanta: u64,
    /// Host time of the capturing barrier's completion.
    pub now_host: HostTime,
    /// Simulated time of the cut (start of the next quantum).
    pub q_start: SimTime,
    /// Length of the next quantum, as chosen by the policy at the cut.
    pub q_len: SimDuration,
    /// The quantum policy's mutable state.
    pub policy_state: Vec<u64>,
    /// Accumulated quantum length at capture.
    pub quanta_total_length: SimDuration,
    /// Next observability sample index.
    pub q_index: u64,
    /// The controller's next packet id.
    pub next_packet_id: u64,
    /// Packets routed so far.
    pub total_packets: u64,
    /// Whole-run straggler statistics so far.
    pub stragglers: StragglerSnap,
    /// Per-node state.
    pub nodes: Vec<NodeSnap>,
    /// Fragments in host flight towards the controller, in delivery order.
    pub in_flight: Vec<InFlightSnap>,
}

/// A captured fragment awaiting injection into a resumed parallel engine,
/// together with its sender.
#[derive(Clone, Debug)]
pub(crate) struct PendingFrag {
    /// Sending node.
    pub src: u32,
    /// The fragment (departure time, destination, size, metadata).
    pub frag: FragSnap,
}

/// Per-node state a resumed *parallel* engine needs (the deterministic
/// engine restores directly from [`NodeSnap`], which carries more).
#[derive(Clone, Debug)]
pub(crate) struct ResumeNode {
    /// Executor state.
    pub exec: ExecutorState,
    /// Next outgoing message sequence number.
    pub msg_seq: u64,
    /// Remaining non-interruptible work cut at the quantum edge.
    pub pending: Option<SimDuration>,
    /// The program already finished at capture time.
    pub done: bool,
}

/// Everything a parallel engine needs to resume from a quantum-edge
/// snapshot: per-node state, policy state, run counters, and the set of
/// fragments that were still travelling at the cut.
#[derive(Clone, Debug)]
pub(crate) struct ResumeSeed {
    /// Simulated start of the first resumed quantum.
    pub q_start: SimTime,
    /// Length of the first resumed quantum (already chosen by the policy).
    pub q_len: SimDuration,
    /// The quantum policy's mutable state at the cut.
    pub policy_state: Vec<u64>,
    /// Completed quanta at the cut.
    pub quanta: u64,
    /// Packets delivered before the cut (excludes `frags`).
    pub total_packets: u64,
    /// Straggler statistics accumulated before the cut.
    pub stragglers: StragglerStats,
    /// Per-node executor / RNG / pending-work state.
    pub nodes: Vec<ResumeNode>,
    /// Fragments cut mid-travel: controller in-flight entries first (in
    /// delivery order), then per-node NIC queues in node order. The
    /// resuming engine routes and injects these before its first quantum.
    pub frags: Vec<PendingFrag>,
}

impl SnapshotBody {
    /// Folds the snapshot into the engine-agnostic resume seed used by the
    /// threaded and sharded engines.
    pub(crate) fn seed(&self) -> Result<ResumeSeed, SimError> {
        let mut frags: Vec<PendingFrag> = self
            .in_flight
            .iter()
            .map(|f| PendingFrag {
                src: f.src,
                frag: f.frag.clone(),
            })
            .collect();
        for (i, n) in self.nodes.iter().enumerate() {
            frags.extend(n.outgoing.iter().map(|f| PendingFrag {
                src: i as u32,
                frag: f.clone(),
            }));
        }
        Ok(ResumeSeed {
            q_start: self.q_start,
            q_len: self.q_len,
            policy_state: self.policy_state.clone(),
            quanta: self.quanta,
            total_packets: self.total_packets,
            stragglers: self.stragglers.restore()?,
            nodes: self
                .nodes
                .iter()
                .map(|n| ResumeNode {
                    exec: n.exec.clone(),
                    msg_seq: n.msg_seq,
                    pending: n.pending.map(|(rem, _idle)| rem),
                    done: n.done,
                })
                .collect(),
            frags,
        })
    }
}

/// A crash-safe, quantum-edge snapshot of a running simulation.
///
/// Produced by [`Sim::snapshot_at`](crate::Sim::snapshot_at) (or
/// [`Sim::step_snapshot`](crate::Sim::step_snapshot)) and consumed by
/// [`Sim::resume`](crate::Sim::resume). Serialize with
/// [`to_bytes`](Self::to_bytes) and rebuild with
/// [`from_bytes`](Self::from_bytes); the codec validates the frame magic,
/// version, length, checksum, and every per-node RNG probe, returning a
/// typed [`SimError`] for each corruption class.
#[derive(Clone, Debug, PartialEq)]
pub struct SimSnapshot {
    pub(crate) body: SnapshotBody,
}

impl SimSnapshot {
    /// Number of completed quanta at the capture point.
    pub fn quanta(&self) -> u64 {
        self.body.quanta
    }

    /// Simulated time of the cut (equals the start of the next quantum).
    pub fn sim_time(&self) -> SimTime {
        self.body.q_start
    }

    /// Number of nodes in the captured run.
    pub fn n_nodes(&self) -> usize {
        self.body.nodes.len()
    }

    /// The spec fingerprint the snapshot was captured under. Resume
    /// recomputes this from the target simulation and rejects a mismatch.
    pub fn fingerprint(&self) -> u64 {
        self.body.fingerprint
    }

    /// Serializes the snapshot into the versioned, checksummed wire frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        #[allow(unused_mut)]
        let mut body = self.body.clone();
        #[cfg(feature = "fault-inject")]
        if crate::fault::armed(crate::fault::Fault::SnapshotRngSkip) {
            // Advance node 0's RNG stream one draw but keep the old probe:
            // the state words stay plausible, only the probe check can tell.
            let mut r = Rng::from_state(body.nodes[0].speed.rng).expect("captured state valid");
            let _ = r.next_u64();
            body.nodes[0].speed.rng = r.state();
        }
        #[cfg(feature = "fault-inject")]
        if crate::fault::armed(crate::fault::Fault::SnapshotStaleFingerprint) {
            // A stale epoch header: the frame is internally consistent
            // (checksum passes) but describes a different simulation spec.
            body.fingerprint ^= 1;
        }
        let mut payload = Enc::default();
        body.encode(&mut payload);
        #[allow(unused_mut)]
        let mut payload = payload.buf;
        let checksum = fnv1a(&payload);
        #[cfg(feature = "fault-inject")]
        if crate::fault::armed(crate::fault::Fault::SnapshotChecksumFlip) {
            let last = payload.len() - 1;
            payload[last] ^= 0xFF;
        }
        let mut out = Vec::with_capacity(28 + payload.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum.to_le_bytes());
        out.extend_from_slice(&payload);
        #[cfg(feature = "fault-inject")]
        if crate::fault::armed(crate::fault::Fault::SnapshotTruncate) {
            out.truncate(out.len().saturating_sub(9));
        }
        out
    }

    /// Rebuilds a snapshot from its wire frame.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotFormat`] for a bad magic, version, length, or
    /// malformed payload; [`SimError::SnapshotChecksum`] when the payload
    /// bytes do not hash to the stored checksum;
    /// [`SimError::SnapshotRngStream`] when a node's RNG state disagrees
    /// with its probe word.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SimError> {
        if bytes.len() < 28 {
            return Err(SimError::snapshot_format(format!(
                "frame too short: {} bytes",
                bytes.len()
            )));
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SimError::snapshot_format("bad magic"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SimError::snapshot_format(format!(
                "unsupported version {version}"
            )));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let stored_checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
        let payload = &bytes[28..];
        if payload.len() != payload_len {
            return Err(SimError::snapshot_format(format!(
                "payload length {} != declared {payload_len}",
                payload.len()
            )));
        }
        let checksum = fnv1a(payload);
        if checksum != stored_checksum {
            return Err(SimError::SnapshotChecksum {
                expected: stored_checksum,
                actual: checksum,
            });
        }
        let mut dec = Dec { b: payload, at: 0 };
        let body = SnapshotBody::decode(&mut dec)?;
        if dec.at != payload.len() {
            return Err(SimError::snapshot_format(format!(
                "{} trailing payload bytes",
                payload.len() - dec.at
            )));
        }
        for (i, n) in body.nodes.iter().enumerate() {
            let mut probe = Rng::from_state(n.speed.rng)
                .ok_or_else(|| SimError::snapshot_format(format!("node {i}: invalid RNG state")))?;
            if probe.next_u64() != n.rng_probe {
                return Err(SimError::SnapshotRngStream { node: i });
            }
        }
        Ok(Self { body })
    }
}

// ---------------------------------------------------------------------------
// Codec.

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn boolean(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }
}

struct Dec<'a> {
    b: &'a [u8],
    at: usize,
}

impl Dec<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SimError> {
        if self.at + n > self.b.len() {
            return Err(SimError::snapshot_format("payload truncated"));
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SimError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SimError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SimError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn boolean(&mut self) -> Result<bool, SimError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SimError::snapshot_format(format!("bad bool byte {v}"))),
        }
    }
    fn f64(&mut self) -> Result<f64, SimError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, SimError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            v => Err(SimError::snapshot_format(format!("bad option tag {v}"))),
        }
    }
    fn len(&mut self) -> Result<usize, SimError> {
        let v = self.u64()?;
        // Cheap sanity bound: no list in a snapshot can have more elements
        // than remaining payload bytes.
        if v as usize > self.b.len() {
            return Err(SimError::snapshot_format(format!("implausible length {v}")));
        }
        Ok(v as usize)
    }
}

fn enc_meta(e: &mut Enc, m: &MessageMeta) {
    e.u32(m.id.src.as_u32());
    e.u64(m.id.seq);
    e.u32(m.tag.as_u32());
    e.u64(m.bytes);
    e.u32(m.frag_count);
}

fn dec_meta(d: &mut Dec) -> Result<MessageMeta, SimError> {
    Ok(MessageMeta {
        id: MessageId {
            src: Rank::new(d.u32()?),
            seq: d.u64()?,
        },
        tag: Tag::new(d.u32()?),
        bytes: d.u64()?,
        frag_count: d.u32()?,
    })
}

fn enc_frag(e: &mut Enc, f: &FragSnap) {
    e.u64(f.departure.as_nanos());
    match f.dst {
        None => e.u8(0),
        Some(r) => {
            e.u8(1);
            e.u32(r);
        }
    }
    e.u32(f.bytes);
    enc_meta(e, &f.meta);
    e.u32(f.frag_index);
}

fn dec_frag(d: &mut Dec) -> Result<FragSnap, SimError> {
    Ok(FragSnap {
        departure: SimTime::from_nanos(d.u64()?),
        dst: match d.u8()? {
            0 => None,
            1 => Some(d.u32()?),
            v => return Err(SimError::snapshot_format(format!("bad dst tag {v}"))),
        },
        bytes: d.u32()?,
        meta: dec_meta(d)?,
        frag_index: d.u32()?,
    })
}

fn enc_mailbox(e: &mut Enc, m: &MailboxState) {
    e.len(m.assembling.len());
    for a in &m.assembling {
        enc_meta(e, &a.meta);
        e.len(a.received_mask.len());
        for &b in &a.received_mask {
            e.boolean(b);
        }
        e.u64(a.latest_arrival.as_nanos());
    }
    e.len(m.ready.len());
    for r in &m.ready {
        enc_meta(e, &r.meta);
        e.u64(r.ready_at.as_nanos());
    }
    e.u64(m.completed_total);
}

fn dec_mailbox(d: &mut Dec) -> Result<MailboxState, SimError> {
    let n_asm = d.len()?;
    let mut assembling = Vec::with_capacity(n_asm);
    for _ in 0..n_asm {
        let meta = dec_meta(d)?;
        let n_mask = d.len()?;
        let mut received_mask = Vec::with_capacity(n_mask);
        for _ in 0..n_mask {
            received_mask.push(d.boolean()?);
        }
        assembling.push(AssemblingState {
            meta,
            received_mask,
            latest_arrival: SimTime::from_nanos(d.u64()?),
        });
    }
    let n_ready = d.len()?;
    let mut ready = Vec::with_capacity(n_ready);
    for _ in 0..n_ready {
        ready.push(ReadyState {
            meta: dec_meta(d)?,
            ready_at: SimTime::from_nanos(d.u64()?),
        });
    }
    Ok(MailboxState {
        assembling,
        ready,
        completed_total: d.u64()?,
    })
}

fn enc_exec(e: &mut Enc, x: &ExecutorState) {
    e.u64(x.pc);
    e.u64(x.ops_executed);
    e.u64(x.messages_received);
    e.u64(x.pending_overhead.as_nanos());
    e.len(x.open_regions.len());
    for &(r, t) in &x.open_regions {
        e.u32(r.as_u32());
        e.u64(t.as_nanos());
    }
    e.len(x.regions.len());
    for r in &x.regions {
        e.u32(r.region.as_u32());
        e.u64(r.start.as_nanos());
        e.u64(r.end.as_nanos());
    }
    e.opt_u64(x.finish_time.map(|t| t.as_nanos()));
    enc_mailbox(e, &x.mailbox);
}

fn dec_exec(d: &mut Dec) -> Result<ExecutorState, SimError> {
    let pc = d.u64()?;
    let ops_executed = d.u64()?;
    let messages_received = d.u64()?;
    let pending_overhead = SimDuration::from_nanos(d.u64()?);
    let n_open = d.len()?;
    let mut open_regions = Vec::with_capacity(n_open);
    for _ in 0..n_open {
        open_regions.push((RegionId::new(d.u32()?), SimTime::from_nanos(d.u64()?)));
    }
    let n_reg = d.len()?;
    let mut regions = Vec::with_capacity(n_reg);
    for _ in 0..n_reg {
        regions.push(aqs_node::RegionRecord {
            region: RegionId::new(d.u32()?),
            start: SimTime::from_nanos(d.u64()?),
            end: SimTime::from_nanos(d.u64()?),
        });
    }
    let finish_time = d.opt_u64()?.map(SimTime::from_nanos);
    let mailbox = dec_mailbox(d)?;
    Ok(ExecutorState {
        pc,
        ops_executed,
        messages_received,
        pending_overhead,
        open_regions,
        regions,
        finish_time,
        mailbox,
    })
}

fn enc_speed(e: &mut Enc, s: &HostSpeedState) {
    for w in s.rng.s {
        e.u64(w);
    }
    match s.rng.spare_normal {
        None => e.u8(0),
        Some(v) => {
            e.u8(1);
            e.f64(v);
        }
    }
    e.f64(s.drift_value);
    e.f64(s.jitter);
}

fn dec_speed(d: &mut Dec) -> Result<HostSpeedState, SimError> {
    let mut s = [0u64; 4];
    for w in &mut s {
        *w = d.u64()?;
    }
    let spare_normal = match d.u8()? {
        0 => None,
        1 => Some(d.f64()?),
        v => return Err(SimError::snapshot_format(format!("bad spare tag {v}"))),
    };
    Ok(HostSpeedState {
        rng: RngState { s, spare_normal },
        drift_value: d.f64()?,
        jitter: d.f64()?,
    })
}

impl SnapshotBody {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.fingerprint);
        e.u64(self.quanta);
        e.u64(self.now_host.as_nanos());
        e.u64(self.q_start.as_nanos());
        e.u64(self.q_len.as_nanos());
        e.len(self.policy_state.len());
        for &w in &self.policy_state {
            e.u64(w);
        }
        e.u64(self.quanta_total_length.as_nanos());
        e.u64(self.q_index);
        e.u64(self.next_packet_id);
        e.u64(self.total_packets);
        e.u64(self.stragglers.count);
        e.u64(self.stragglers.total.as_nanos());
        e.u64(self.stragglers.max.as_nanos());
        e.len(self.stragglers.hist_counts.len());
        for &c in &self.stragglers.hist_counts {
            e.u64(c);
        }
        e.u64(self.stragglers.hist_sum);
        e.u64(self.stragglers.hist_max);
        e.len(self.nodes.len());
        for n in &self.nodes {
            enc_exec(e, &n.exec);
            enc_speed(e, &n.speed);
            e.u64(n.rng_probe);
            e.u64(n.msg_seq);
            match n.pending {
                None => e.u8(0),
                Some((rem, idle)) => {
                    e.u8(1);
                    e.u64(rem.as_nanos());
                    e.boolean(idle);
                }
            }
            e.len(n.outgoing.len());
            for f in &n.outgoing {
                enc_frag(e, f);
            }
            e.boolean(n.done);
            e.opt_u64(n.finish_host.map(|h| h.as_nanos()));
            e.boolean(n.blocked_no_candidate);
        }
        e.len(self.in_flight.len());
        for f in &self.in_flight {
            e.u64(f.due_host.as_nanos());
            e.u32(f.src);
            enc_frag(e, &f.frag);
        }
    }

    fn decode(d: &mut Dec) -> Result<Self, SimError> {
        let fingerprint = d.u64()?;
        let quanta = d.u64()?;
        let now_host = HostTime::from_nanos(d.u64()?);
        let q_start = SimTime::from_nanos(d.u64()?);
        let q_len = SimDuration::from_nanos(d.u64()?);
        let n_pol = d.len()?;
        let mut policy_state = Vec::with_capacity(n_pol);
        for _ in 0..n_pol {
            policy_state.push(d.u64()?);
        }
        let quanta_total_length = SimDuration::from_nanos(d.u64()?);
        let q_index = d.u64()?;
        let next_packet_id = d.u64()?;
        let total_packets = d.u64()?;
        let s_count = d.u64()?;
        let s_total = SimDuration::from_nanos(d.u64()?);
        let s_max = SimDuration::from_nanos(d.u64()?);
        let n_hist = d.len()?;
        if n_hist != LOG2_BUCKETS {
            return Err(SimError::snapshot_format(format!(
                "straggler histogram has {n_hist} buckets, expected {LOG2_BUCKETS}"
            )));
        }
        let mut hist_counts = Vec::with_capacity(n_hist);
        for _ in 0..n_hist {
            hist_counts.push(d.u64()?);
        }
        let hist_sum = d.u64()?;
        let hist_max = d.u64()?;
        let n_nodes = d.len()?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let exec = dec_exec(d)?;
            let speed = dec_speed(d)?;
            let rng_probe = d.u64()?;
            let msg_seq = d.u64()?;
            let pending = match d.u8()? {
                0 => None,
                1 => Some((SimDuration::from_nanos(d.u64()?), d.boolean()?)),
                v => return Err(SimError::snapshot_format(format!("bad pending tag {v}"))),
            };
            let n_out = d.len()?;
            let mut outgoing = Vec::with_capacity(n_out);
            for _ in 0..n_out {
                outgoing.push(dec_frag(d)?);
            }
            nodes.push(NodeSnap {
                exec,
                speed,
                rng_probe,
                msg_seq,
                pending,
                outgoing,
                done: d.boolean()?,
                finish_host: d.opt_u64()?.map(HostTime::from_nanos),
                blocked_no_candidate: d.boolean()?,
            });
        }
        let n_fl = d.len()?;
        let mut in_flight = Vec::with_capacity(n_fl);
        for _ in 0..n_fl {
            in_flight.push(InFlightSnap {
                due_host: HostTime::from_nanos(d.u64()?),
                src: d.u32()?,
                frag: dec_frag(d)?,
            });
        }
        Ok(Self {
            fingerprint,
            quanta,
            now_host,
            q_start,
            q_len,
            policy_state,
            quanta_total_length,
            q_index,
            next_packet_id,
            total_packets,
            stragglers: StragglerSnap {
                count: s_count,
                total: s_total,
                max: s_max,
                hist_counts,
                hist_sum,
                hist_max,
            },
            nodes,
            in_flight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_body() -> SnapshotBody {
        let mut rng = Rng::substream(7, 0);
        let _ = rng.next_u64();
        let state = rng.state();
        let probe = {
            let mut c = Rng::from_state(state).unwrap();
            c.next_u64()
        };
        SnapshotBody {
            fingerprint: 0xDEAD_BEEF,
            quanta: 3,
            now_host: HostTime::from_nanos(12345),
            q_start: SimTime::from_micros(3),
            q_len: SimDuration::from_micros(1),
            policy_state: vec![1, 2, 3],
            quanta_total_length: SimDuration::from_micros(3),
            q_index: 3,
            next_packet_id: 9,
            total_packets: 9,
            stragglers: StragglerSnap {
                count: 0,
                total: SimDuration::ZERO,
                max: SimDuration::ZERO,
                hist_counts: vec![0; LOG2_BUCKETS],
                hist_sum: 0,
                hist_max: 0,
            },
            nodes: vec![NodeSnap {
                exec: ExecutorState {
                    pc: 2,
                    ops_executed: 100,
                    messages_received: 1,
                    pending_overhead: SimDuration::ZERO,
                    open_regions: vec![(RegionId::new(1), SimTime::from_nanos(5))],
                    regions: vec![],
                    finish_time: None,
                    mailbox: MailboxState::default(),
                },
                speed: HostSpeedState {
                    rng: state,
                    drift_value: 0.25,
                    jitter: 1.5,
                },
                rng_probe: probe,
                msg_seq: 4,
                pending: Some((SimDuration::from_nanos(77), false)),
                outgoing: vec![FragSnap {
                    departure: SimTime::from_micros(4),
                    dst: Some(1),
                    bytes: 1500,
                    meta: MessageMeta {
                        id: MessageId {
                            src: Rank::new(0),
                            seq: 3,
                        },
                        tag: Tag::new(9),
                        bytes: 1500,
                        frag_count: 1,
                    },
                    frag_index: 0,
                }],
                done: false,
                finish_host: None,
                blocked_no_candidate: false,
            }],
            in_flight: vec![InFlightSnap {
                due_host: HostTime::from_nanos(999),
                src: 0,
                frag: FragSnap {
                    departure: SimTime::from_micros(2),
                    dst: None,
                    bytes: 64,
                    meta: MessageMeta {
                        id: MessageId {
                            src: Rank::new(0),
                            seq: 2,
                        },
                        tag: Tag::new(0),
                        bytes: 64,
                        frag_count: 1,
                    },
                    frag_index: 0,
                },
            }],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let snap = SimSnapshot { body: tiny_body() };
        let bytes = snap.to_bytes();
        let back = SimSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn truncation_is_a_format_error() {
        let bytes = SimSnapshot { body: tiny_body() }.to_bytes();
        for cut in [0, 10, 27, bytes.len() - 1] {
            let err = SimSnapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SimError::SnapshotFormat { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_error() {
        let mut bytes = SimSnapshot { body: tiny_body() }.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            SimSnapshot::from_bytes(&bytes).unwrap_err(),
            SimError::SnapshotChecksum { .. }
        ));
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let good = SimSnapshot { body: tiny_body() }.to_bytes();
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            SimSnapshot::from_bytes(&bad_magic).unwrap_err(),
            SimError::SnapshotFormat { .. }
        ));
        let mut bad_version = good;
        bad_version[8] = 99;
        // Version is inside the header, not the payload: format error, not
        // checksum.
        assert!(matches!(
            SimSnapshot::from_bytes(&bad_version).unwrap_err(),
            SimError::SnapshotFormat { .. }
        ));
    }

    #[test]
    fn skipped_rng_stream_is_detected() {
        let mut body = tiny_body();
        // Advance the stream without refreshing the probe.
        let mut r = Rng::from_state(body.nodes[0].speed.rng).unwrap();
        let _ = r.next_u64();
        body.nodes[0].speed.rng = r.state();
        let bytes = SimSnapshot { body }.to_bytes();
        assert!(matches!(
            SimSnapshot::from_bytes(&bytes).unwrap_err(),
            SimError::SnapshotRngStream { node: 0 }
        ));
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
