//! The sharded parallel engine: N node simulators on M worker threads.
//!
//! The threaded engine ([`parallel`](crate::parallel)) inherits the paper's
//! one-SimNow-per-core shape: one OS thread per simulated node. That stops
//! scaling long before cluster sizes — at 256+ nodes the host drowns in
//! oversubscription and scheduler churn instead of exercising Algorithm 1.
//! This engine decouples logical processes from OS threads: the N node
//! simulators are partitioned into M contiguous shards (M defaulting to the
//! host's available parallelism), each worker advances its whole shard to
//! the quantum edge, and the quantum handshake is a hierarchical two-level
//! [`TreeBarrier`] whose root leader runs the `QuantumPolicy` exactly as the
//! threaded engine's [`aqs_sync::LeaderBarrier`] leader does.
//!
//! Packets cross shards through one lock-free [`Mailbox`] per shard, with
//! every hop allocation-free in steady state:
//!
//! * pushes recycle nodes from the sending worker's [`MailboxPool`]; drains
//!   recycle them into the receiving worker's pool;
//! * the per-worker inbox scratch buffer keeps its capacity across quanta;
//! * `LatencyMatrix` switch lookups go through a dense precomputed
//!   nanosecond table (no bounds asserts, no enum dispatch per packet).
//!
//! **Delivery is quantum-edge-deterministic.** Unlike the threaded engine,
//! which checks arrivals against the receiver's live published position (a
//! benign race under unsafe quanta), this engine computes the effective
//! delivery time at route time as `max(arrival, q_end)` of the sender's
//! current quantum, and each shard drains its mailbox exactly once, at the
//! quantum boundary. A packet that would arrive mid-quantum is a straggler
//! with delay `q_end − arrival` (always less than the quantum, hence within
//! the policy's `maxQ` bound), deferred to the boundary. Consequences:
//!
//! * **Results are bit-identical for every worker count M** and independent
//!   of thread scheduling, for *any* policy: per-node timelines depend only
//!   on the delivered timestamp sets, which no longer depend on the race.
//! * **Under the safe quantum (`Q ≤ T`) the timeline equals the
//!   deterministic engine's bit for bit**: every arrival already lands at or
//!   after the quantum edge, so `max(arrival, q_end) = arrival` and zero
//!   stragglers occur — the same argument as for the threaded engine.
//!
//! # Examples
//!
//! ```
//! use aqs_cluster::{EngineKind, Sim};
//! use aqs_core::SyncConfig;
//! use aqs_workloads::ping_pong;
//!
//! let spec = ping_pong(4, 3, 64);
//! let report = Sim::new(spec.programs)
//!     .engine(EngineKind::Sharded)
//!     .shards(2)
//!     .sync(SyncConfig::ground_truth())
//!     .run();
//! assert_eq!(report.stragglers.count(), 0);
//! assert_eq!(report.messages_received, 6);
//! ```

use crate::parallel::{
    busy_work, LeaderState, ParallelConfig, ParallelNodeResult, ParallelSwitch, Q_END_STOP,
};
use crate::sim::{EngineKind, SimError};
use crate::snapshot::ResumeSeed;
use aqs_net::{
    ChaosOverlay, Destination, FatTreeFabric, LinkLoad, NicModel, NodeId, StragglerStats,
};
use aqs_node::{Action, MessageId, MessageMeta, NodeExecutor, Program, SendTarget};
use aqs_obs::{QuantumObs, Recorder};
use aqs_sync::{ArrivalTimes, CachePadded, Mailbox, MailboxPool, PoolDepot, TreeBarrier};
use aqs_time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of a sharded run. Mirrors
/// [`ParallelRunResult`](crate::parallel::ParallelRunResult) plus the worker
/// count the run actually used.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardedRunResult {
    /// Real wall-clock the run took.
    pub wall: Duration,
    /// Simulated completion time (max across nodes).
    pub sim_end: SimTime,
    /// Quanta executed (including the stop round).
    pub total_quanta: u64,
    /// Packets routed.
    pub total_packets: u64,
    /// Straggler statistics (boundary-deferred arrivals).
    pub stragglers: StragglerStats,
    /// Per-node results, in rank order.
    pub per_node: Vec<ParallelNodeResult>,
    /// Worker threads the run used (after clamping to the node count).
    pub workers: usize,
    /// Heap allocations the pooled packet path performed, summed over
    /// workers. This is pool warm-up only: it tracks the peak number of
    /// packets in flight per worker, not the number routed, so in steady
    /// state routing a packet allocates nothing.
    pub pool_heap_allocs: u64,
    /// Node executions summed over all quanta (the active-set work metric).
    /// A full sweep executes every node every quantum, so this equals
    /// `n × total_quanta`; the active-set scheduler executes only nodes with
    /// a wake inside the quantum, so the ratio of the two is the structural
    /// win on idle-heavy workloads. Deterministic: independent of the worker
    /// count and of thread scheduling.
    pub nodes_executed: u64,
}

impl ShardedRunResult {
    /// Total messages received across nodes.
    pub fn messages_received_total(&self) -> u64 {
        self.per_node.iter().map(|n| n.messages_received).sum()
    }
}

/// Default worker count: the host's available parallelism.
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fragment in flight to one receiver, addressed by global node index.
/// `arrival` is already the effective (boundary-deferred) delivery time.
#[derive(Clone, Copy, Debug)]
struct ShardInFlight {
    dst: u32,
    meta: MessageMeta,
    frag_index: u32,
    arrival: SimTime,
}

/// Precomputed switch transit: the per-packet lookup is one indexed load of
/// a nanosecond count (dense matrix) or a pure SoA computation (fabric) —
/// no enum dispatch over trait objects, no bounds assert, no allocation.
pub(crate) enum ArrivalTable {
    /// Perfect switch: zero transit, nothing to look up.
    Perfect,
    /// Dense `n × n` row-major transit nanoseconds.
    Dense { n: usize, nanos: Vec<u64> },
    /// The fat-tree fabric: transit is a pure function of
    /// `(src, dst, bytes, departure)`, so per-worker slices can route their
    /// own racks' traffic in any order with bit-identical results.
    Fabric(FatTreeFabric),
    /// Chaos middleware over another table: the inner table computes the
    /// base transit and the overlay adds its seeded fault delay — pure, so
    /// cross-M identity survives fault injection. The overlay cannot be
    /// folded into a dense matrix: its delay depends on `bytes` and
    /// `departure`, not just `(src, dst)`.
    Chaos(ChaosOverlay, Box<ArrivalTable>),
}

impl ArrivalTable {
    pub(crate) fn build(switch: &ParallelSwitch, n: usize) -> Self {
        match switch {
            ParallelSwitch::Perfect => ArrivalTable::Perfect,
            ParallelSwitch::LatencyMatrix(m) => {
                assert!(
                    m.ports() >= n,
                    "latency matrix has {} ports for {} nodes",
                    m.ports(),
                    n
                );
                let mut nanos = Vec::with_capacity(n * n);
                for src in 0..n {
                    for dst in 0..n {
                        nanos.push(
                            m.latency(NodeId::new(src as u32), NodeId::new(dst as u32))
                                .as_nanos(),
                        );
                    }
                }
                ArrivalTable::Dense { n, nanos }
            }
            ParallelSwitch::Fabric(f) => {
                assert!(
                    f.n_nodes() >= n,
                    "fabric was built for {} nodes, cluster has {}",
                    f.n_nodes(),
                    n
                );
                ArrivalTable::Fabric(f.clone())
            }
            ParallelSwitch::Chaos(overlay, inner) => {
                ArrivalTable::Chaos(overlay.clone(), Box::new(Self::build(inner, n)))
            }
        }
    }

    #[inline]
    pub(crate) fn transit_nanos(
        &self,
        src: usize,
        dst: usize,
        bytes: u32,
        departure: SimTime,
    ) -> u64 {
        match self {
            ArrivalTable::Perfect => 0,
            ArrivalTable::Dense { n, nanos } => nanos[src * n + dst],
            ArrivalTable::Fabric(f) => {
                f.transit_nanos(src as u32, dst as u32, bytes, departure.as_nanos())
            }
            ArrivalTable::Chaos(overlay, inner) => {
                inner.transit_nanos(src, dst, bytes, departure)
                    + overlay.extra_nanos(src as u32, dst as u32, bytes, departure.as_nanos())
            }
        }
    }
}

/// One worker's (= one fabric slice's) per-link load accumulator. Each
/// worker writes only its own slot (relaxed adds — the slot is effectively
/// thread-private during the quantum), and the barrier-root leader drains
/// every slot with `swap(0)` inside the barrier's exclusive section.
/// Commutative sums only: the merged totals are independent of worker count
/// and routing order.
struct LinkSlot {
    bytes: Vec<AtomicU64>,
    packets: Vec<AtomicU64>,
}

impl LinkSlot {
    fn new(n_links: usize) -> Self {
        Self {
            bytes: (0..n_links).map(|_| AtomicU64::new(0)).collect(),
            packets: (0..n_links).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Per-shard observability publication (straggler delta for the quantum).
#[derive(Default)]
struct ShardObsSlot {
    s_count: AtomicU64,
    s_max: AtomicU64,
    /// Nodes this shard executed during the quantum (active-set size).
    active: AtomicU64,
}

/// Floor for a worker pool's retain watermark (see
/// [`MailboxPool::set_retain`]). Each quantum boundary sets the watermark
/// to the worker's own routed-fragment count for that quantum, floored
/// here: a worker keeps what it pushes — self-sufficient under balanced
/// traffic, no depot round trips — while a net receiver (incast) donates
/// its drain surplus to the depot within a couple of quanta instead of
/// hoarding it while the sending workers fall back on the heap.
const POOL_RETAIN_FLOOR: usize = 256;

/// Per-worker accounting, entirely thread-private.
struct WorkerCtx {
    /// This worker's index (= its shard, = its fabric slice).
    w: usize,
    /// Stragglers recorded in the current quantum.
    stragglers: StragglerStats,
    /// Run-total straggler tally, returned at worker exit.
    run_stragglers: StragglerStats,
    /// Packets routed in the current quantum (the policy's `np` signal).
    quantum_packets: u64,
    /// Free-list of mailbox nodes: pushes take from here, drains refill it.
    pool: MailboxPool<ShardInFlight>,
}

/// A shard's node simulators in struct-of-arrays layout.
///
/// The hot per-quantum scalars (`sim`, `pending_ns`) live in dense parallel
/// vectors so the active-set scan touches cache-linear memory; the
/// executors — which carry the cold per-node state (program, mailbox,
/// region records) out of line — are only dereferenced for nodes that
/// actually execute. Local index `l` addresses every lane; the global
/// node index is `base + l` (shards are contiguous).
struct ShardNodes {
    /// Global index of local node 0.
    base: usize,
    execs: Vec<NodeExecutor>,
    /// Per-node simulated position.
    sim: Vec<SimTime>,
    /// Per-node send sequence counter.
    msg_seq: Vec<u64>,
    /// Remainder (ns) of an op that did not fit in the previous quantum;
    /// 0 means none ([`Action::Advance`] durations are never zero — the
    /// executor consumes zero-cost ops internally).
    pending_ns: Vec<u64>,
    done_reported: Vec<bool>,
}

/// Per-shard wake wheel: which locals run in the current quantum, and when
/// parked-with-a-deadline locals become due. Entirely worker-private.
struct WakeWheel {
    /// Bitmap over local indices: bit set ⇒ the node executes this quantum.
    /// Stable during the scan — same-quantum sends land in mailboxes that
    /// drain at the *next* boundary, so executing a node never arms another.
    ready_words: Vec<u64>,
    /// Scheduled polls as `(wake_ns, local)` min-entries. Every entry arms
    /// exactly one poll, in the first quantum whose edge lies beyond
    /// `wake_ns` — unconditionally, with no staleness check. An entry that
    /// was superseded (the node already woke earlier and re-slept) arms a
    /// side-effect-free re-poll, which is harmless and — crucially —
    /// *deterministic*: the entry multiset is a pure function of the
    /// simulated history, never of cross-worker drain timing, so the
    /// executed-node count is identical for every shard count.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl WakeWheel {
    fn new(len: usize) -> Self {
        Self {
            ready_words: vec![0u64; len.div_ceil(64)],
            heap: BinaryHeap::new(),
        }
    }

    #[inline]
    fn arm_now(&mut self, l: usize) {
        self.ready_words[l >> 6] |= 1u64 << (l & 63);
    }
}

/// Shared state across worker threads.
struct SharedSharded<R> {
    nic: NicModel,
    arrivals: ArrivalTable,
    /// Wall-clock origin for barrier-wait timestamps.
    start: Instant,
    /// Shard (= worker) owning each global node index.
    shard_of: Vec<u32>,
    /// Per-shard incoming fragment queues (lock-free MPSC).
    mailboxes: Vec<Mailbox<ShardInFlight>>,
    /// Shared overflow depot recirculating mailbox nodes between worker
    /// pools. Incast traffic is directional — every drained node lands in
    /// the receiver's pool — so without the depot the sending workers would
    /// re-allocate every fragment at steady state while the receiver's
    /// overflow was freed.
    depot: Arc<PoolDepot<ShardInFlight>>,
    /// Per-shard packets routed this quantum; the leader sums these.
    np_slots: Vec<CachePadded<AtomicU64>>,
    /// Per-shard straggler deltas for the quantum (observability only).
    shard_obs: Vec<CachePadded<ShardObsSlot>>,
    /// Per-node idle-tail (vt lag) for the quantum, in sim ns.
    lag_slots: Vec<CachePadded<AtomicU64>>,
    /// Per-worker fabric link-load slices, sized `m × n_links`. Empty (and
    /// the recording path compiled out) unless the switch is a fabric *and*
    /// the recorder is enabled.
    fabric_slots: Vec<LinkSlot>,
    /// End of the current quantum in sim ns; `Q_END_STOP` means stop.
    q_end: AtomicU64,
    /// Number of nodes whose program has finished.
    done: AtomicU64,
    /// Deadlock-guard flag (checked after join, where panicking is safe).
    overflow: AtomicBool,
    barrier: TreeBarrier<LeaderState<R>>,
}

impl<R: Recorder> SharedSharded<R> {
    /// Routes one fragment of `bytes` bytes from global node `src` departing
    /// at `departure`, with `q_end` the sender's current quantum edge. The
    /// effective delivery time is `max(arrival, q_end)` — fully
    /// deterministic, no reads of receiver state: transit is a pure function
    /// of `(src, dst, bytes, departure)` for every supported switch, so
    /// neither worker count nor routing order can change an arrival.
    #[allow(clippy::too_many_arguments)]
    fn route(
        &self,
        ctx: &mut WorkerCtx,
        src: usize,
        dst: Destination,
        bytes: u32,
        departure: SimTime,
        q_end: SimTime,
        meta: MessageMeta,
        frag_index: u32,
    ) {
        let base = self.nic.earliest_arrival(departure);
        match dst {
            Destination::Unicast(d) => self.deliver(
                ctx,
                src,
                d.index(),
                bytes,
                departure,
                base,
                q_end,
                meta,
                frag_index,
            ),
            Destination::Broadcast => {
                // Per-destination transit is independent: each fan-out copy
                // gets its own path and its own (src, dst)-keyed delay.
                for t in 0..self.shard_of.len() {
                    if t != src {
                        self.deliver(ctx, src, t, bytes, departure, base, q_end, meta, frag_index);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn deliver(
        &self,
        ctx: &mut WorkerCtx,
        src: usize,
        t: usize,
        bytes: u32,
        departure: SimTime,
        base: SimTime,
        q_end: SimTime,
        meta: MessageMeta,
        frag_index: u32,
    ) {
        ctx.quantum_packets += 1;
        let arrival =
            base + SimDuration::from_nanos(self.arrivals.transit_nanos(src, t, bytes, departure));
        if R::ENABLED && !self.fabric_slots.is_empty() {
            if let ArrivalTable::Fabric(f) = &self.arrivals {
                // Observation only (never feeds timing): bump this slice's
                // counters along the packet's path. Relaxed is enough — the
                // slot is written by this worker alone during the quantum
                // and drained by the leader inside the barrier.
                let slot = &self.fabric_slots[ctx.w];
                for &link in f.path(src as u32, t as u32).links() {
                    slot.bytes[link as usize].fetch_add(bytes as u64, Ordering::Relaxed);
                    slot.packets[link as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let eff = if arrival < q_end {
            ctx.stragglers.record(q_end - arrival);
            q_end
        } else {
            arrival
        };
        self.mailboxes[self.shard_of[t] as usize].push_pooled(
            ShardInFlight {
                dst: t as u32,
                meta,
                frag_index,
                arrival: eff,
            },
            &mut ctx.pool,
        );
    }
}

/// Balanced contiguous partition of `n` nodes over `m` shards: the first
/// `n % m` shards get one extra node.
pub(crate) fn partition(n: usize, m: usize) -> Vec<std::ops::Range<usize>> {
    let base = n / m;
    let rem = n % m;
    let mut ranges = Vec::with_capacity(m);
    let mut start = 0;
    for s in 0..m {
        let len = base + usize::from(s < rem);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Contiguous partition of `weights.len()` nodes over `m` shards that
/// balances *expected-active* work instead of node count.
///
/// The weight is each node's program length (op count) — a cheap static
/// proxy for how often the node is hot: on idle-heavy workloads the
/// sleepers are the short single-`recv` programs, so an op-count split
/// hands shards with many sleepers proportionally more nodes and keeps the
/// per-quantum active-set scan balanced across workers. The split is the
/// greedy cumulative-weight quantile cut, clamped so every shard keeps at
/// least one node.
///
/// Two properties matter more than the balance itself:
///
/// * **Stability**: the split is a pure function of `(weights, m)`, so a
///   resumed run and a rerun partition identically and cross-M identity
///   artifacts stay byte-reproducible.
/// * **Uniform weights reproduce [`partition`] exactly** (remainder-first,
///   the historical layout), pinning every artifact produced before
///   weighting existed.
pub(crate) fn partition_weighted(weights: &[u64], m: usize) -> Vec<std::ops::Range<usize>> {
    let n = weights.len();
    // Clamp to ≥ 1 so zero-weight (empty-program) nodes still consume
    // quantile room — coverage of 0..n must never depend on the weights.
    let weight = |i: usize| weights[i].max(1);
    if (1..n).all(|i| weight(i) == weight(0)) {
        return partition(n, m);
    }
    let total: u64 = (0..n).map(weight).sum();
    let mut ranges = Vec::with_capacity(m);
    let mut start = 0usize;
    let mut acc = 0u64;
    for s in 0..m {
        // Cumulative weight the end of shard s aims for; the clamp leaves
        // one node for each of the m-1-s shards still to come.
        let target = (u128::from(total) * (s as u128 + 1) / m as u128) as u64;
        let max_end = n - (m - 1 - s);
        let mut end = start + 1;
        acc += weight(start);
        while end < max_end && acc < target {
            acc += weight(end);
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Initial state of one node simulator inside a shard: a fresh executor at
/// sim time zero, or a restored executor at the snapshot's cut point.
struct ShardNodeInit {
    global: usize,
    exec: NodeExecutor,
    sim: SimTime,
    msg_seq: u64,
    pending: Option<SimDuration>,
    done: bool,
}

/// Routes the snapshot's cut-in-flight fragments ahead of the first resumed
/// quantum. The effective delivery time is `max(arrival, q_start)` — the
/// *same* rule the uninterrupted run applied at route time, because every
/// captured fragment departed during the quantum that ended at the cut, so
/// the sender's `q_end` then equals the resumed run's `q_start` now. The
/// straggler records this snapping produces are therefore bit-identical to
/// the uninterrupted run's, for any policy.
fn route_seed_frags(
    seed: &ResumeSeed,
    nic: &NicModel,
    arrivals: &ArrivalTable,
    shard_of: &[u32],
    m: usize,
) -> Result<(Vec<Vec<ShardInFlight>>, u64, StragglerStats), SimError> {
    let n = shard_of.len();
    let mut injected: Vec<Vec<ShardInFlight>> = (0..m).map(|_| Vec::new()).collect();
    let mut count = 0u64;
    let mut stragglers = StragglerStats::default();
    for pf in &seed.frags {
        let src = pf.src as usize;
        if src >= n {
            return Err(SimError::snapshot_format(format!(
                "in-flight fragment from node {src}, but the cluster has {n} nodes"
            )));
        }
        let base = nic.earliest_arrival(pf.frag.departure);
        let deliver_to =
            |t: usize, injected: &mut Vec<Vec<ShardInFlight>>, stragglers: &mut StragglerStats| {
                let arrival = base
                    + SimDuration::from_nanos(arrivals.transit_nanos(
                        src,
                        t,
                        pf.frag.bytes,
                        pf.frag.departure,
                    ));
                let eff = if arrival < seed.q_start {
                    stragglers.record(seed.q_start - arrival);
                    seed.q_start
                } else {
                    arrival
                };
                injected[shard_of[t] as usize].push(ShardInFlight {
                    dst: t as u32,
                    meta: pf.frag.meta,
                    frag_index: pf.frag.frag_index,
                    arrival: eff,
                });
            };
        match pf.frag.dst {
            Some(r) => {
                let t = r as usize;
                if t >= n {
                    return Err(SimError::snapshot_format(format!(
                        "in-flight fragment for node {t}, but the cluster has {n} nodes"
                    )));
                }
                deliver_to(t, &mut injected, &mut stragglers);
                count += 1;
            }
            None => {
                for t in (0..n).filter(|&t| t != src) {
                    deliver_to(t, &mut injected, &mut stragglers);
                    count += 1;
                }
            }
        }
    }
    Ok((injected, count, stragglers))
}

/// Sharded engine entry point with an explicit [`Recorder`]; the unified
/// `Sim` builder dispatches here. `workers` of `None` uses the host's
/// available parallelism; the count is clamped to `[1, n]`.
///
/// With `resume`, the run starts at the snapshot's cut instead of time
/// zero; because delivery is quantum-edge-deterministic, the resumed run is
/// bit-identical to the uninterrupted one for every worker count and any
/// policy.
///
/// # Panics
///
/// Panics if fewer than two programs are given or program *i* is not for
/// rank *i*. A quantum-cap overflow (deadlock guard) is a typed
/// [`SimError::QuantumCapExceeded`], not a panic.
pub(crate) fn run_sharded_impl<R: Recorder>(
    programs: Vec<Program>,
    config: &ParallelConfig,
    workers: Option<usize>,
    recorder: R,
    resume: Option<&ResumeSeed>,
) -> Result<(ShardedRunResult, R), SimError> {
    assert!(programs.len() >= 2, "a cluster needs at least 2 nodes");
    for (i, p) in programs.iter().enumerate() {
        assert_eq!(p.rank().index(), i, "program {i} is for {}", p.rank());
    }
    let n = programs.len();
    if let Some(s) = resume {
        if s.nodes.len() != n {
            return Err(SimError::snapshot_format(format!(
                "snapshot has {} nodes, simulation has {n}",
                s.nodes.len()
            )));
        }
    }
    let m = workers.unwrap_or_else(default_workers).clamp(1, n);
    let weights: Vec<u64> = programs.iter().map(|p| p.ops().len() as u64).collect();
    let ranges = partition_weighted(&weights, m);
    let mut shard_of = vec![0u32; n];
    for (s, range) in ranges.iter().enumerate() {
        for slot in &mut shard_of[range.clone()] {
            *slot = s as u32;
        }
    }
    let mut policy = config.sync.build();
    let q0 = policy.initial_quantum();
    if let Some(s) = resume {
        policy
            .load_state(&s.policy_state)
            .map_err(SimError::snapshot_format)?;
    }
    let q_start = resume.map_or(SimTime::ZERO, |s| s.q_start);
    let q_end0 = resume.map_or(q0.as_nanos(), |s| (s.q_start + s.q_len).as_nanos());
    let arrivals = ArrivalTable::build(&config.switch, n);
    let (injected, inject_count, inject_stragglers) = match resume {
        Some(s) => route_seed_frags(s, &config.nic, &arrivals, &shard_of, m)?,
        None => (Vec::new(), 0, StragglerStats::default()),
    };
    let mut inits: Vec<Option<ShardNodeInit>> = Vec::with_capacity(n);
    let mut n_done = 0u64;
    for (i, program) in programs.into_iter().enumerate() {
        inits.push(Some(match resume {
            Some(s) => {
                let ns = &s.nodes[i];
                if ns.done {
                    n_done += 1;
                }
                ShardNodeInit {
                    global: i,
                    exec: NodeExecutor::from_state(program, config.cpu, ns.exec.clone())
                        .map_err(|e| SimError::snapshot_format(format!("node {i}: {e}")))?,
                    sim: s.q_start,
                    msg_seq: ns.msg_seq,
                    pending: ns.pending,
                    done: ns.done,
                }
            }
            None => ShardNodeInit {
                global: i,
                exec: NodeExecutor::new(program, config.cpu),
                sim: SimTime::ZERO,
                msg_seq: 0,
                pending: None,
                done: false,
            },
        }));
    }
    // Fabric link-load slices exist only when there is something to record
    // them into; otherwise the whole path is a dead (compiled-out) branch.
    let n_links = match &config.switch {
        ParallelSwitch::Fabric(f) if R::ENABLED => f.n_links(),
        _ => 0,
    };
    let leader = LeaderState {
        policy,
        quanta: resume.map_or(0, |s| s.quanta),
        total_packets: resume.map_or(0, |s| s.total_packets) + inject_count,
        q_start_nanos: q_start.as_nanos(),
        q_end_nanos: q_end0,
        max_quanta: config.max_quanta,
        rec: recorder,
        waits: Vec::with_capacity(n),
        lags: Vec::with_capacity(n),
        link_load: LinkLoad::new(n_links),
        shard_actives: Vec::with_capacity(m),
    };
    let start = Instant::now();
    let shared = SharedSharded {
        nic: config.nic,
        arrivals,
        start,
        shard_of,
        mailboxes: (0..m).map(|_| Mailbox::new()).collect(),
        depot: Arc::new(PoolDepot::new()),
        np_slots: (0..m)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect(),
        shard_obs: (0..m)
            .map(|_| CachePadded::new(ShardObsSlot::default()))
            .collect(),
        // The lag sentinel: `u64::MAX` means "not executed this quantum".
        // Workers store a node's real lag when they execute it; the leader
        // swaps the sentinel back in each quantum and substitutes the full
        // quantum length for skipped nodes — exactly the lag the full sweep
        // computes for a node it re-polls while parked.
        lag_slots: (0..n)
            .map(|_| CachePadded::new(AtomicU64::new(u64::MAX)))
            .collect(),
        fabric_slots: if n_links > 0 {
            (0..m).map(|_| LinkSlot::new(n_links)).collect()
        } else {
            Vec::new()
        },
        q_end: AtomicU64::new(q_end0),
        done: AtomicU64::new(n_done),
        overflow: AtomicBool::new(false),
        barrier: TreeBarrier::new(m, leader),
    };
    let mut inject_pool = MailboxPool::new();
    for (s, frags) in injected.into_iter().enumerate() {
        for f in frags {
            shared.mailboxes[s].push_pooled(f, &mut inject_pool);
        }
    }
    type WorkerOutput = (Vec<ParallelNodeResult>, StragglerStats, u64, u64);
    let joined: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(w, range)| {
                let shard: Vec<ShardNodeInit> = range
                    .clone()
                    .map(|i| inits[i].take().expect("each node init taken once"))
                    .collect();
                let shared = &shared;
                scope.spawn(move || worker_thread(w, shard, config, shared))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    if shared.overflow.load(Ordering::Acquire) {
        return Err(SimError::QuantumCapExceeded {
            engine: EngineKind::Sharded,
            max_quanta: config.max_quanta,
        });
    }
    let wall = start.elapsed();
    // Shards are contiguous and joined in shard order, so flattening yields
    // rank order; the straggler merge is deterministic for the same reason.
    let mut stragglers = resume.map_or_else(StragglerStats::default, |s| s.stragglers);
    stragglers.merge(&inject_stragglers);
    let mut per_node = Vec::with_capacity(n);
    let mut pool_heap_allocs = 0;
    let mut nodes_executed = 0;
    for (nodes, worker_stragglers, worker_allocs, worker_executed) in joined {
        stragglers.merge(&worker_stragglers);
        per_node.extend(nodes);
        pool_heap_allocs += worker_allocs;
        nodes_executed += worker_executed;
    }
    let sim_end = per_node
        .iter()
        .map(|r| r.finish_sim)
        .max()
        .expect("at least two nodes");
    let leader = shared.barrier.into_state();
    let result = ShardedRunResult {
        wall,
        sim_end,
        total_quanta: leader.quanta,
        total_packets: leader.total_packets,
        stragglers,
        per_node,
        workers: m,
        pool_heap_allocs,
        nodes_executed,
    };
    Ok((result, leader.rec))
}

/// Runs one shard to completion; returns its nodes' results (in rank
/// order), the worker's run-total straggler tally, its packet pool's
/// heap-allocation count, and the number of node executions it performed.
///
/// The active-set scheduler (the default) executes only nodes with a
/// scheduled wake inside the quantum; a quantum where the whole shard is
/// parked touches no node memory at all and fast-forwards straight to the
/// barrier. With [`ParallelConfig::full_sweep`] the worker executes every
/// node every quantum — the legacy behavior, kept as the differential
/// baseline the active set must match bit for bit.
fn worker_thread<R: Recorder>(
    w: usize,
    shard: Vec<ShardNodeInit>,
    config: &ParallelConfig,
    shared: &SharedSharded<R>,
) -> (Vec<ParallelNodeResult>, StragglerStats, u64, u64) {
    let base = shard.first().map(|init| init.global).unwrap_or(0);
    let len = shard.len();
    let q_start0 = shard.first().map(|init| init.sim).unwrap_or(SimTime::ZERO);
    let mut nodes = ShardNodes {
        base,
        execs: Vec::with_capacity(len),
        sim: Vec::with_capacity(len),
        msg_seq: Vec::with_capacity(len),
        pending_ns: Vec::with_capacity(len),
        done_reported: Vec::with_capacity(len),
    };
    for init in shard {
        nodes.execs.push(init.exec);
        nodes.sim.push(init.sim);
        nodes.msg_seq.push(init.msg_seq);
        nodes
            .pending_ns
            .push(init.pending.map_or(0, |d| d.as_nanos()));
        nodes.done_reported.push(init.done);
    }
    let mut ctx = WorkerCtx {
        w,
        stragglers: StragglerStats::default(),
        run_stragglers: StragglerStats::default(),
        quantum_packets: 0,
        pool: MailboxPool::with_depot(
            MailboxPool::<ShardInFlight>::DEFAULT_CAP,
            Arc::clone(&shared.depot),
        ),
    };
    let full_sweep = config.full_sweep;
    // Every node starts armed (a fresh run must poll everyone at least
    // once; a resumed run re-polls everyone on the first quantum, exactly
    // as the pre-active-set engine did). The wake wheel takes over from
    // the first execution onward.
    let mut wheel = WakeWheel::new(len);
    for l in 0..len {
        wheel.arm_now(l);
    }
    let mut nodes_executed = 0u64;
    // Reusable scratch: capacity persists across quanta.
    let mut inbox: Vec<ShardInFlight> = Vec::new();
    let mut q_start = q_start0;
    let mut q_end = SimTime::from_nanos(shared.q_end.load(Ordering::Acquire));
    loop {
        let q_end_ns = q_end.as_nanos();
        // Quantum boundary: drain this shard's mailbox once and deliver.
        // Effective timestamps were fixed at route time, so delivery order
        // within the batch is irrelevant (matching is timestamp-based).
        shared.mailboxes[w].drain_into_pooled(&mut inbox, &mut ctx.pool);
        for f in inbox.drain(..) {
            let l = f.dst as usize - base;
            nodes.execs[l].deliver_fragment(f.meta, f.frag_index, f.arrival);
            if full_sweep {
                continue;
            }
            // Re-arm the receiver in O(1): a delivery inside this quantum
            // sets its ready bit directly, a future delivery schedules a
            // poll through the heap. Strictness matters twice over: an
            // event at exactly `q_end` belongs to the *next* quantum
            // (execution covers `[q_start, q_end)`), and a fragment routed
            // by a peer shard during this very quantum carries
            // `eff >= q_end` — whether this drain races ahead of the peer's
            // push (seeing it now) or picks it up a boundary later, the
            // poll lands in the same quantum either way. The push is
            // unconditional for the same reason: guarding it on the node's
            // current wake would drop the entry exactly when the receiver
            // is about to execute and re-park, making the poll schedule
            // depend on drain timing.
            let eff_ns = f.arrival.as_nanos();
            if eff_ns < q_end_ns {
                wheel.arm_now(l);
            } else {
                #[cfg(feature = "fault-inject")]
                if crate::fault::armed(crate::fault::Fault::WakeRearmSkip) {
                    // Armed bug: the delivery happened, but the wake wheel
                    // forgets to re-arm the sleeper.
                    continue;
                }
                wheel.heap.push(Reverse((eff_ns, l as u32)));
            }
        }
        let mut active = 0u64;
        if full_sweep {
            for l in 0..len {
                let (lag_ns, _wake) =
                    advance_node(&mut nodes, l, shared, config, &mut ctx, q_start, q_end);
                if R::ENABLED {
                    shared.lag_slots[base + l].store(lag_ns, Ordering::Relaxed);
                }
            }
            active = len as u64;
        } else {
            // Promote sleepers whose scheduled wake falls strictly inside
            // this quantum (a wake at exactly `q_end` is the next quantum's
            // first instant). Every popped entry arms its node: a stale
            // entry — the node already woke earlier and re-slept — arms a
            // side-effect-free re-poll, identical under every shard count.
            while let Some(&Reverse((t, l))) = wheel.heap.peek() {
                if t >= q_end_ns {
                    break;
                }
                wheel.heap.pop();
                wheel.arm_now(l as usize);
            }
            // Execute the active set in ascending local order (bit order =
            // rank order within the shard, matching the full sweep).
            for wi in 0..wheel.ready_words.len() {
                let mut word = std::mem::take(&mut wheel.ready_words[wi]);
                while word != 0 {
                    let l = (wi << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let (lag_ns, wake) =
                        advance_node(&mut nodes, l, shared, config, &mut ctx, q_start, q_end);
                    if wake != u64::MAX {
                        wheel.heap.push(Reverse((wake, l as u32)));
                    }
                    if R::ENABLED {
                        shared.lag_slots[base + l].store(lag_ns, Ordering::Relaxed);
                    }
                    active += 1;
                }
            }
        }
        nodes_executed += active;
        match next_quantum(shared, &mut ctx, w, active) {
            Some(qe) => {
                q_start = q_end;
                q_end = qe;
            }
            None => break,
        }
    }
    let results = (0..len)
        .map(|l| ParallelNodeResult {
            rank: nodes.execs[l].rank(),
            finish_sim: nodes.execs[l].finish_time().unwrap_or_else(|| {
                // A parked node's `sim` lane may lag the last quantum edge
                // (fast-forwarding is lazy); the full sweep would have
                // dragged it to the edge every quantum.
                nodes.sim[l].max(q_end)
            }),
            ops: nodes.execs[l].ops_executed(),
            messages_received: nodes.execs[l].messages_received(),
            regions: nodes.execs[l].regions().to_vec(),
        })
        .collect();
    (
        results,
        ctx.run_stragglers,
        ctx.pool.heap_allocs(),
        nodes_executed,
    )
}

/// Advances one node to the quantum edge — the same inner loop as the
/// threaded engine's `node_thread`, minus mid-quantum drains (deliveries
/// are never consumable before the boundary by construction) and minus
/// position publication (nothing reads it).
///
/// Returns `(lag_ns, wake_ns)`: the node's idle-tail lag for observability
/// (0 when busy to the edge) and its next wake time — `q_end` when the node
/// must run again next quantum (mid-op remainder, or more program to poll),
/// the wait deadline for a timed sleeper, or `u64::MAX` to park it until a
/// delivery re-arms it (blocked or finished).
fn advance_node<R: Recorder>(
    nodes: &mut ShardNodes,
    l: usize,
    shared: &SharedSharded<R>,
    config: &ParallelConfig,
    ctx: &mut WorkerCtx,
    q_start: SimTime,
    q_end: SimTime,
) -> (u64, u64) {
    // Fast-forward a woken sleeper: the full sweep dragged `sim` to every
    // intervening quantum edge (`sim = max(sim, q_end)` below); skipping
    // those quanta and taking one `max` against the current quantum start
    // lands in the identical state, because a parked node's re-polls are
    // side-effect-free.
    if nodes.sim[l] < q_start {
        nodes.sim[l] = q_start;
    }
    let mut lag_ns = 0u64;
    let mut wake = q_end.as_nanos();
    while nodes.sim[l] < q_end {
        if nodes.pending_ns[l] != 0 {
            let remaining = SimDuration::from_nanos(nodes.pending_ns[l]);
            let step = remaining.min(q_end - nodes.sim[l]);
            nodes.sim[l] += step;
            if step < remaining {
                nodes.pending_ns[l] = (remaining - step).as_nanos();
                break; // quantum boundary reached mid-op
            }
            nodes.pending_ns[l] = 0;
            continue;
        }
        match nodes.execs[l].next_action(nodes.sim[l]) {
            Action::Advance { dur, ops, idle } => {
                if !idle && config.host_work_per_op > 0.0 && ops > 0 {
                    busy_work(ops as f64 * config.host_work_per_op);
                }
                nodes.pending_ns[l] = dur.as_nanos();
            }
            Action::Send { dst, bytes, tag } => {
                let dest = match dst {
                    SendTarget::Rank(r) => Destination::Unicast(NodeId::new(r.as_u32())),
                    SendTarget::All => Destination::Broadcast,
                };
                let frag_count = shared.nic.fragment_count(bytes);
                let meta = MessageMeta {
                    id: MessageId {
                        src: nodes.execs[l].rank(),
                        seq: nodes.msg_seq[l],
                    },
                    tag,
                    bytes,
                    frag_count,
                };
                nodes.msg_seq[l] += 1;
                for k in 0..frag_count {
                    let sz = shared.nic.fragment_size(bytes, k);
                    nodes.sim[l] += shared.nic.serialization_delay(sz);
                    shared.route(ctx, nodes.base + l, dest, sz, nodes.sim[l], q_end, meta, k);
                }
            }
            Action::WaitUntil(t) => {
                if t >= q_end {
                    if R::ENABLED {
                        lag_ns = (q_end - nodes.sim[l]).as_nanos();
                    }
                    wake = t.as_nanos();
                    nodes.sim[l] = q_end;
                    break;
                }
                nodes.sim[l] = t;
            }
            Action::Blocked => {
                if R::ENABLED {
                    lag_ns = (q_end - nodes.sim[l]).as_nanos();
                }
                wake = u64::MAX;
                nodes.sim[l] = q_end;
                break;
            }
            Action::Finished => {
                if !nodes.done_reported[l] {
                    nodes.done_reported[l] = true;
                    shared.done.fetch_add(1, Ordering::AcqRel);
                }
                if R::ENABLED {
                    lag_ns = (q_end - nodes.sim[l]).as_nanos();
                }
                wake = u64::MAX;
                nodes.sim[l] = q_end;
                break;
            }
        }
    }
    nodes.sim[l] = nodes.sim[l].max(q_end);
    (lag_ns, wake)
}

/// Meets the tree barrier; the root leader advances the policy and publishes
/// `(q_end, stop)` through the epoch handshake. Returns the new quantum end,
/// or `None` when the run is over.
fn next_quantum<R: Recorder>(
    shared: &SharedSharded<R>,
    ctx: &mut WorkerCtx,
    w: usize,
    active: u64,
) -> Option<SimTime> {
    shared.np_slots[w].store(ctx.quantum_packets, Ordering::Relaxed);
    // Tune the pool's donation watermark to this worker's own push demand
    // (floored): keep roughly one quantum's worth of sends local, donate
    // drain surplus beyond that to the shared depot.
    ctx.pool
        .set_retain((ctx.quantum_packets as usize).max(POOL_RETAIN_FLOOR));
    ctx.quantum_packets = 0;
    if R::ENABLED {
        let slot = &shared.shard_obs[w];
        slot.s_count
            .store(ctx.stragglers.count(), Ordering::Relaxed);
        slot.s_max
            .store(ctx.stragglers.max_delay().as_nanos(), Ordering::Relaxed);
        slot.active.store(active, Ordering::Relaxed);
    }
    if ctx.stragglers.count() > 0 {
        ctx.run_stragglers.merge(&ctx.stragglers);
        ctx.stragglers = StragglerStats::default();
    }
    if R::ENABLED {
        let now_ns = shared.start.elapsed().as_nanos() as u64;
        shared.barrier.arrive_timed(w, now_ns, |leader, ts| {
            leader_step(shared, leader, Some(ts))
        });
    } else {
        shared
            .barrier
            .arrive(w, |leader| leader_step(shared, leader, None));
    }
    // Ordered after the leader's stores by the epoch acquire inside arrive.
    let q_end = shared.q_end.load(Ordering::Relaxed);
    if q_end == Q_END_STOP {
        None
    } else {
        Some(SimTime::from_nanos(q_end))
    }
}

/// The root leader's quantum-boundary work: record the observability sample
/// (merging the per-shard slots into per-node lanes), then advance the
/// policy and publish `(q_end, stop)` — the same step the threaded engine's
/// leader runs, over per-shard instead of per-thread inputs.
fn leader_step<R: Recorder>(
    shared: &SharedSharded<R>,
    leader: &mut LeaderState<R>,
    ts: Option<ArrivalTimes<'_>>,
) {
    let np: u64 = shared
        .np_slots
        .iter()
        .map(|s| s.load(Ordering::Relaxed))
        .sum();
    if R::ENABLED {
        let ts = ts.expect("recording enabled without timed arrival");
        // Worker arrival stamps, expanded to per-node lanes (every node in a
        // shard shares its worker's barrier wait) so the flight recorder's
        // per-node layout holds for any M.
        let latest = (0..ts.len()).map(|k| ts.get(k)).max().unwrap_or(0);
        let q_len_nanos = leader.q_end_nanos - leader.q_start_nanos;
        leader.waits.clear();
        leader.lags.clear();
        for (node, &shard) in shared.shard_of.iter().enumerate() {
            leader
                .waits
                .push(latest.saturating_sub(ts.get(shard as usize)));
            // Swap the sentinel back in for next quantum. A node the active
            // set skipped (sentinel still present) idled through the whole
            // quantum: its lag is the full quantum length, exactly what the
            // full sweep computes when it re-polls a parked node.
            let lag = shared.lag_slots[node].swap(u64::MAX, Ordering::Relaxed);
            leader
                .lags
                .push(if lag == u64::MAX { q_len_nanos } else { lag });
        }
        let mut s_count = 0u64;
        let mut s_max = 0u64;
        let mut active_total = 0u64;
        leader.shard_actives.clear();
        for slot in &shared.shard_obs {
            s_count += slot.s_count.load(Ordering::Relaxed);
            s_max = s_max.max(slot.s_max.load(Ordering::Relaxed));
            let a = slot.active.load(Ordering::Relaxed);
            active_total += a;
            leader.shard_actives.push(a);
        }
        leader.rec.record_quantum(&QuantumObs {
            index: leader.quanta,
            start: SimTime::from_nanos(leader.q_start_nanos),
            len: SimDuration::from_nanos(leader.q_end_nanos - leader.q_start_nanos),
            packets: np,
            active_nodes: active_total,
            stragglers: s_count,
            max_straggler_delay: SimDuration::from_nanos(s_max),
            barrier_wait_ns: &leader.waits,
            vt_lag_ns: &leader.lags,
        });
        leader.rec.record_shard_activity(&leader.shard_actives);
        if !shared.fabric_slots.is_empty() {
            // Drain every slice's per-link counters into the merge scratch.
            // Safe: the leader runs inside the barrier's exclusive section,
            // all workers parked. swap(0) leaves the slots ready for the
            // next quantum, and the sums are commutative, so the merged
            // totals are independent of M and of routing order.
            leader.link_load.clear();
            for slot in &shared.fabric_slots {
                for link in 0..leader.link_load.n_links() {
                    leader.link_load.add(
                        link,
                        slot.bytes[link].swap(0, Ordering::Relaxed),
                        slot.packets[link].swap(0, Ordering::Relaxed),
                    );
                }
            }
            leader
                .rec
                .record_link_load(leader.link_load.bytes(), leader.link_load.packets());
        }
    }
    leader.quanta += 1;
    leader.total_packets += np;
    let all_done = shared.done.load(Ordering::Acquire) as usize == shared.shard_of.len();
    if all_done {
        shared.q_end.store(Q_END_STOP, Ordering::Relaxed);
    } else if leader.quanta > leader.max_quanta {
        // Cannot panic while peers wait on the barrier — flag and stop.
        shared.overflow.store(true, Ordering::Relaxed);
        shared.q_end.store(Q_END_STOP, Ordering::Relaxed);
    } else {
        #[allow(unused_mut)]
        let mut policy_np = np;
        #[cfg(feature = "fault-inject")]
        if crate::fault::armed(crate::fault::Fault::LeaderNpSkip) {
            // Mirror the threaded engine's armable bug: the policy's view
            // forgets shard 0's packets; the recorded trace keeps true np.
            policy_np -= shared.np_slots[0].load(Ordering::Relaxed);
        }
        let next = leader.policy.next_quantum(policy_np);
        leader.q_start_nanos = leader.q_end_nanos;
        leader.q_end_nanos += next.as_nanos();
        shared.q_end.store(leader.q_end_nanos, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::sim::Sim;
    use aqs_core::SyncConfig;
    use aqs_net::LatencyMatrixSwitch;
    use aqs_node::{ProgramBuilder, Rank, Tag};
    use aqs_obs::NullRecorder;
    use aqs_workloads::{burst, ping_pong};

    fn cfg(sync: SyncConfig) -> ParallelConfig {
        ParallelConfig::new(sync).with_max_quanta(20_000_000)
    }

    /// Unrecorded engine run with an owned result.
    fn run_sharded(
        programs: Vec<Program>,
        config: &ParallelConfig,
        workers: Option<usize>,
    ) -> ShardedRunResult {
        match run_sharded_impl(programs, config, workers, NullRecorder, None) {
            Ok((r, _)) => r,
            Err(e) => panic!("{e}"),
        }
    }

    #[test]
    fn partition_is_balanced_and_covers() {
        for n in [2usize, 5, 7, 64] {
            for m in 1..=n.min(9) {
                let ranges = partition(n, m);
                assert_eq!(ranges.len(), m);
                assert_eq!(ranges.first().unwrap().start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                    assert!(w[0].len() >= w[1].len());
                    assert!(w[0].len() - w[1].len() <= 1);
                }
            }
        }
    }

    #[test]
    fn weighted_partition_is_stable_and_balances_op_weight() {
        // Uniform weights must reproduce the historical remainder-first
        // split exactly — the pin that keeps pre-weighting artifacts valid.
        assert_eq!(partition_weighted(&[3; 10], 4), partition(10, 4));
        assert_eq!(partition_weighted(&[0; 6], 4), partition(6, 4));
        // Pinned non-uniform split: heavy programs at both ends, the m = 2
        // cut lands at the cumulative-weight midpoint (13 | 13), not the
        // node-count midpoint.
        let w = [10, 1, 1, 1, 1, 1, 1, 10];
        assert_eq!(partition_weighted(&w, 2), vec![0..4, 4..8]);
        // Extreme skew still leaves every shard at least one node, and
        // coverage/contiguity hold.
        let ranges = partition_weighted(&[100, 0, 0, 0], 4);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3, 3..4]);
    }

    /// Hub-and-sleepers workload: rank 0 computes then broadcasts; every
    /// other rank blocks on that single message for the whole run. Only one
    /// of `n` nodes is hot per quantum until the final fan-out.
    fn mostly_idle(n: usize) -> Vec<Program> {
        let mut programs = vec![ProgramBuilder::new(Rank::new(0))
            .compute(500_000)
            .send_all(64, Tag::new(0))
            .build()];
        for r in 1..n {
            programs.push(
                ProgramBuilder::new(Rank::new(r as u32))
                    .recv(Some(Rank::new(0)), Tag::new(0))
                    .build(),
            );
        }
        programs
    }

    #[test]
    fn active_set_matches_full_sweep_bit_for_bit() {
        // The active-set scheduler is an optimization, not a semantics
        // change: for safe and unsafe quanta, idle-heavy and chatty
        // workloads, every observable of the run must equal the legacy
        // full-sweep path's, for every worker count.
        let cases: Vec<(Vec<Program>, SyncConfig)> = vec![
            (mostly_idle(16), SyncConfig::ground_truth()),
            (mostly_idle(16), SyncConfig::paper_dyn1()),
            (
                ping_pong(4, 25, 4096).programs,
                SyncConfig::fixed_micros(1000),
            ),
            (burst(5, 50_000, 1024).programs, SyncConfig::paper_dyn2()),
        ];
        for (programs, sync) in cases {
            let full = run_sharded(
                programs.clone(),
                &cfg(sync.clone()).with_full_sweep(true),
                Some(2),
            );
            for m in 1..=4 {
                let r = run_sharded(programs.clone(), &cfg(sync.clone()), Some(m));
                assert_eq!(r.sim_end, full.sim_end, "workers={m}");
                assert_eq!(r.total_quanta, full.total_quanta, "workers={m}");
                assert_eq!(r.total_packets, full.total_packets, "workers={m}");
                assert_eq!(r.stragglers.count(), full.stragglers.count(), "workers={m}");
                assert_eq!(
                    r.stragglers.total_delay(),
                    full.stragglers.total_delay(),
                    "workers={m}"
                );
                for (a, b) in r.per_node.iter().zip(full.per_node.iter()) {
                    assert_eq!(a.finish_sim, b.finish_sim, "workers={m}");
                    assert_eq!(a.messages_received, b.messages_received, "workers={m}");
                    assert_eq!(a.ops, b.ops, "workers={m}");
                }
                assert!(
                    r.nodes_executed <= full.nodes_executed,
                    "active set must never do more work: {} vs {}",
                    r.nodes_executed,
                    full.nodes_executed
                );
            }
        }
    }

    #[test]
    fn active_set_skips_sleepers_and_counts_are_m_independent() {
        let programs = mostly_idle(32);
        let full = run_sharded(
            programs.clone(),
            &cfg(SyncConfig::ground_truth()).with_full_sweep(true),
            Some(2),
        );
        // The full sweep executes every node every quantum, by definition.
        assert_eq!(full.nodes_executed, 32 * full.total_quanta);
        let reference = run_sharded(programs.clone(), &cfg(SyncConfig::ground_truth()), Some(1));
        assert!(
            reference.nodes_executed < full.nodes_executed / 4,
            "31 sleepers must be skipped almost every quantum: {} vs {}",
            reference.nodes_executed,
            full.nodes_executed
        );
        // The work metric is part of the deterministic outcome: same count
        // for every M.
        for m in 2..=4 {
            let r = run_sharded(programs.clone(), &cfg(SyncConfig::ground_truth()), Some(m));
            assert_eq!(r.nodes_executed, reference.nodes_executed, "workers={m}");
        }
    }

    #[test]
    fn active_set_run_records_activity_per_quantum_and_per_shard() {
        use aqs_obs::{FlightRecorder, ObsConfig};
        let programs = mostly_idle(8);
        let (r, fr) = run_sharded_impl(
            programs,
            &cfg(SyncConfig::ground_truth()),
            Some(2),
            FlightRecorder::new(8, ObsConfig::new()),
            None,
        )
        .expect("run succeeds");
        assert_eq!(fr.total_active_nodes(), r.nodes_executed);
        let lanes = fr.shard_activity().expect("sharded run records activity");
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes.iter().sum::<u64>(), r.nodes_executed);
    }

    #[test]
    fn ping_pong_completes() {
        let spec = ping_pong(2, 5, 64);
        let r = run_sharded(spec.programs, &cfg(SyncConfig::ground_truth()), Some(2));
        assert_eq!(r.messages_received_total(), 10);
        assert_eq!(r.stragglers.count(), 0, "safe quantum must be race-free");
        assert_eq!(r.total_packets, 10);
        assert_eq!(r.workers, 2);
        assert!(r.sim_end > SimTime::ZERO);
    }

    #[test]
    fn packet_path_reaches_an_allocation_free_steady_state() {
        // Pool allocations track the peak number of packets in flight, not
        // the number routed: 20× the rounds must not add a single
        // allocation beyond the short run's warm-up.
        let run = |rounds| {
            let spec = ping_pong(2, rounds, 64);
            run_sharded(spec.programs, &cfg(SyncConfig::ground_truth()), Some(2))
        };
        let short = run(10);
        let long = run(200);
        assert_eq!(long.total_packets, 400);
        assert_eq!(long.pool_heap_allocs, short.pool_heap_allocs);
        assert!(long.pool_heap_allocs < long.total_packets / 10);
    }

    #[test]
    fn safe_quantum_matches_deterministic_engine_for_every_worker_count() {
        let spec = burst(5, 50_000, 1024);
        let report = Sim::new(spec.programs.clone())
            .config(ClusterConfig::new(SyncConfig::ground_truth()).with_seed(1))
            .run();
        let det = report.detail.as_deterministic().expect("det engine");
        for m in 1..=5 {
            let r = run_sharded(
                spec.programs.clone(),
                &cfg(SyncConfig::ground_truth()),
                Some(m),
            );
            assert_eq!(r.sim_end, det.sim_end, "workers={m}");
            assert_eq!(r.total_packets, det.total_packets, "workers={m}");
            assert_eq!(r.stragglers.count(), 0, "workers={m}");
            for (a, b) in r.per_node.iter().zip(det.per_node.iter()) {
                assert_eq!(a.finish_sim, b.finish_sim, "workers={m}");
                assert_eq!(a.messages_received, b.messages_received, "workers={m}");
                assert_eq!(a.ops, b.ops, "workers={m}");
            }
        }
    }

    #[test]
    fn unsafe_quantum_results_are_identical_for_every_worker_count() {
        // The boundary-delivery rule makes the engine deterministic even when
        // quanta are far above the safe bound: any M, same outcome.
        let spec = ping_pong(4, 25, 4096);
        let reference = run_sharded(
            spec.programs.clone(),
            &cfg(SyncConfig::fixed_micros(1000)),
            Some(1),
        );
        assert!(reference.stragglers.count() > 0, "workload must straggle");
        for m in 2..=4 {
            let r = run_sharded(
                spec.programs.clone(),
                &cfg(SyncConfig::fixed_micros(1000)),
                Some(m),
            );
            assert_eq!(r.sim_end, reference.sim_end, "workers={m}");
            assert_eq!(r.total_quanta, reference.total_quanta, "workers={m}");
            assert_eq!(r.total_packets, reference.total_packets, "workers={m}");
            assert_eq!(
                r.stragglers.count(),
                reference.stragglers.count(),
                "workers={m}"
            );
            assert_eq!(
                r.stragglers.total_delay(),
                reference.stragglers.total_delay(),
                "workers={m}"
            );
            for (a, b) in r.per_node.iter().zip(reference.per_node.iter()) {
                assert_eq!(a.finish_sim, b.finish_sim, "workers={m}");
            }
        }
    }

    #[test]
    fn adaptive_policy_reduces_quanta() {
        let mk = |r: u32| {
            let peer = 1 - r;
            let mut b = ProgramBuilder::new(Rank::new(r)).compute(2_000_000);
            if r == 0 {
                b = b.send(Rank::new(peer), 64, Tag::new(0));
            } else {
                b = b.recv(Some(Rank::new(peer)), Tag::new(0));
            }
            b.compute(2_000_000).build()
        };
        let programs = vec![mk(0), mk(1)];
        let truth = run_sharded(programs.clone(), &cfg(SyncConfig::ground_truth()), Some(2));
        let dynr = run_sharded(programs, &cfg(SyncConfig::paper_dyn1()), Some(2));
        assert!(
            dynr.total_quanta < truth.total_quanta / 5,
            "adaptive should need far fewer quanta: {} vs {}",
            dynr.total_quanta,
            truth.total_quanta
        );
    }

    #[test]
    fn latency_matrix_switch_matches_deterministic_engine() {
        use crate::sim::SimSwitch;
        let spec = ping_pong(2, 20, 4096);
        let matrix = LatencyMatrixSwitch::uniform(2, SimDuration::from_micros(3));
        let det = Sim::new(spec.programs.clone())
            .config(ClusterConfig::new(SyncConfig::ground_truth()).with_seed(7))
            .switch(SimSwitch::LatencyMatrix(matrix.clone()))
            .run();
        let r = run_sharded(
            spec.programs,
            &cfg(SyncConfig::ground_truth()).with_switch(ParallelSwitch::LatencyMatrix(matrix)),
            Some(2),
        );
        assert_eq!(r.sim_end, det.sim_end);
        assert_eq!(r.total_packets, det.total_packets);
        assert_eq!(r.stragglers.count(), 0);
    }

    #[test]
    fn worker_count_is_clamped_to_node_count() {
        let spec = ping_pong(2, 2, 64);
        let r = run_sharded(spec.programs, &cfg(SyncConfig::ground_truth()), Some(64));
        assert_eq!(r.workers, 2);
    }

    #[test]
    fn builder_clamps_oversized_shard_counts_and_rejects_zero() {
        use crate::sim::{EngineKind, SimError};
        let spec = ping_pong(2, 2, 64);
        // m > n clamps to n instead of spawning idle workers.
        let report = Sim::new(spec.programs.clone())
            .engine(EngineKind::Sharded)
            .shards(64)
            .sync(SyncConfig::ground_truth())
            .run();
        let sharded = report.detail.as_sharded().expect("sharded engine");
        assert_eq!(sharded.workers, 2);
        // m = 0 is a configuration error, not a panic.
        let err = Sim::new(spec.programs)
            .engine(EngineKind::Sharded)
            .shards(0)
            .sync(SyncConfig::ground_truth())
            .try_run()
            .unwrap_err();
        assert_eq!(err, SimError::ZeroShards);
        assert!(err.to_string().contains("at least one worker"));
    }

    /// A small two-rack fabric: 6 nodes, 2 per rack, 2 uplink planes.
    fn small_fabric(n: usize) -> FatTreeFabric {
        let cfg = aqs_net::FabricConfig::fat_tree()
            .with_rack_size(2)
            .with_uplinks_per_rack(2);
        FatTreeFabric::new(cfg, n)
    }

    #[test]
    fn fabric_switch_matches_deterministic_engine() {
        use crate::sim::SimSwitch;
        let spec = ping_pong(6, 12, 4096);
        let det = Sim::new(spec.programs.clone())
            .config(ClusterConfig::new(SyncConfig::ground_truth()).with_seed(11))
            .switch(SimSwitch::Fabric(
                aqs_net::FabricConfig::fat_tree()
                    .with_rack_size(2)
                    .with_uplinks_per_rack(2),
            ))
            .run();
        let r = run_sharded(
            spec.programs,
            &cfg(SyncConfig::ground_truth()).with_switch(ParallelSwitch::Fabric(small_fabric(6))),
            Some(3),
        );
        assert_eq!(r.sim_end, det.sim_end);
        assert_eq!(r.total_packets, det.total_packets);
        assert_eq!(r.stragglers.count(), 0, "safe quantum must be race-free");
    }

    #[test]
    fn fabric_results_are_identical_for_every_worker_count() {
        // The stateful-looking fabric is epoch-keyed pure, so even under
        // unsafe quanta (stragglers present) the outcome is M-independent.
        let spec = ping_pong(6, 25, 4096);
        let mk = || {
            cfg(SyncConfig::fixed_micros(1000)).with_switch(ParallelSwitch::Fabric(small_fabric(6)))
        };
        let reference = run_sharded(spec.programs.clone(), &mk(), Some(1));
        assert!(reference.stragglers.count() > 0, "workload must straggle");
        for m in 2..=6 {
            let r = run_sharded(spec.programs.clone(), &mk(), Some(m));
            assert_eq!(r.sim_end, reference.sim_end, "workers={m}");
            assert_eq!(r.total_quanta, reference.total_quanta, "workers={m}");
            assert_eq!(r.total_packets, reference.total_packets, "workers={m}");
            assert_eq!(
                r.stragglers.total_delay(),
                reference.stragglers.total_delay(),
                "workers={m}"
            );
            for (a, b) in r.per_node.iter().zip(reference.per_node.iter()) {
                assert_eq!(a.finish_sim, b.finish_sim, "workers={m}");
            }
        }
    }

    #[test]
    fn fabric_link_load_is_recorded_and_m_independent() {
        use aqs_obs::{FlightRecorder, ObsConfig};
        let fabric = small_fabric(6);
        let n_links = fabric.n_links();
        let spec = burst(6, 50_000, 4096);
        let run = |m| {
            run_sharded_impl(
                spec.programs.clone(),
                &cfg(SyncConfig::ground_truth())
                    .with_switch(ParallelSwitch::Fabric(fabric.clone())),
                Some(m),
                FlightRecorder::new(6, ObsConfig::new()),
                None,
            )
            .expect("run succeeds")
        };
        let (r1, fr1) = run(1);
        let (r3, fr3) = run(3);
        assert_eq!(r1.sim_end, r3.sim_end);
        let l1 = fr1.link_load().expect("fabric run records link load");
        let l3 = fr3.link_load().expect("fabric run records link load");
        assert_eq!(l1.bytes.len(), n_links);
        assert!(l1.total_bytes() > 0, "traffic must hit the fabric");
        assert_eq!(l1.bytes, l3.bytes, "link byte totals must be M-independent");
        assert_eq!(l1.packets, l3.packets);
        let (hot, hot_bytes) = l1.hottest().expect("some link is hottest");
        assert!(hot < n_links && hot_bytes > 0);
        // An unrecorded fabric run must not regress the pooled packet path.
        let null = run_sharded(
            spec.programs.clone(),
            &cfg(SyncConfig::ground_truth()).with_switch(ParallelSwitch::Fabric(fabric.clone())),
            Some(3),
        );
        assert_eq!(null.sim_end, r3.sim_end);
        assert_eq!(null.total_packets, r3.total_packets);
    }

    #[test]
    fn flight_recorder_matches_run_totals_and_null_run() {
        use aqs_obs::{FlightRecorder, ObsConfig};
        let spec = burst(4, 50_000, 1024);
        let (r, fr) = run_sharded_impl(
            spec.programs.clone(),
            &cfg(SyncConfig::ground_truth()),
            Some(2),
            FlightRecorder::new(4, ObsConfig::new()),
            None,
        )
        .expect("run succeeds");
        assert_eq!(fr.total_packets(), r.total_packets);
        assert_eq!(fr.total_quanta(), r.total_quanta);
        assert_eq!(fr.total_stragglers(), r.stragglers.count());
        let null = run_sharded(spec.programs, &cfg(SyncConfig::ground_truth()), Some(2));
        assert_eq!(null.sim_end, r.sim_end);
        assert_eq!(null.total_quanta, r.total_quanta);
        assert_eq!(null.total_packets, r.total_packets);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn quantum_cap_catches_deadlock() {
        let p0 = ProgramBuilder::new(Rank::new(0))
            .recv(Some(Rank::new(1)), Tag::new(0))
            .build();
        let p1 = ProgramBuilder::new(Rank::new(1)).compute(10).build();
        let _ = run_sharded(
            vec![p0, p1],
            &ParallelConfig::new(SyncConfig::fixed_micros(1000)).with_max_quanta(500),
            Some(1),
        );
    }
}
