//! An optimistic (checkpoint/rollback) cluster engine — the §3 alternative.
//!
//! The paper rejects optimistic PDES for full-system cluster simulation on
//! cost grounds: checkpointing a node means saving gigabytes of guest
//! memory and disk journal, "easily … 30-40 seconds" per cycle. This module
//! implements a window-based optimistic engine so that claim can be
//! *measured* instead of asserted:
//!
//! * time is cut into **windows**; at each window start every node
//!   checkpoints (a configurable host cost — the paper's 30 s, or zero to
//!   study the algorithm in isolation);
//! * within a window all nodes **free-run** with whatever messages they
//!   know about, with no synchronization at all;
//! * at the window end the controller compares what each node *should*
//!   have received against what it executed with; any node whose inbound
//!   set changed **rolls back** (restore cost) and re-executes, repeatedly,
//!   until the window reaches a fixed point.
//!
//! The payoff of optimism is exactness: messages are always re-delivered
//! at their true arrival times, so the committed simulated timeline is
//! *identical* to the conservative ground truth's (tested). The price is
//! the checkpoint/rollback bill, which the `ablation_optimistic` benchmark
//! compares against quantum synchronization.
//!
//! # Examples
//!
//! ```
//! use aqs_cluster::{EngineKind, Sim};
//! use aqs_core::SyncConfig;
//! use aqs_time::{HostDuration, SimDuration};
//! use aqs_workloads::ping_pong;
//!
//! let spec = ping_pong(2, 3, 64);
//! let report = Sim::new(spec.programs)
//!     .engine(EngineKind::Optimistic)
//!     .sync(SyncConfig::ground_truth())
//!     .window(SimDuration::from_micros(50))
//!     .optimistic_costs(HostDuration::ZERO, HostDuration::ZERO)
//!     .run();
//! let detail = report.detail.as_optimistic().unwrap();
//! assert_eq!(detail.per_node[0].messages_received, 3);
//! assert!(detail.rollbacks > 0, "a ping-pong forces rollbacks");
//! ```

use crate::config::ClusterConfig;
use crate::result::NodeResult;
use crate::sim::{EngineKind, SimError};
use aqs_node::{
    Action, HostSpeed, MessageId, MessageMeta, NodeExecutor, Program, Rank, SendTarget,
};
use aqs_obs::{QuantumObs, Recorder};
use aqs_rng::Rng;
use aqs_time::{HostDuration, HostTime, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of an optimistic run.
///
/// The `with_*` setters are **order-independent**: each one stores a single
/// field and derives nothing, so any permutation of the same calls builds
/// the same configuration.
#[derive(Clone, Debug)]
pub struct OptimisticConfig {
    /// Node/NIC/CPU/host models (the `sync` field is ignored — there is no
    /// quantum).
    pub base: ClusterConfig,
    /// Free-run window length.
    pub window: SimDuration,
    /// Host cost of taking one checkpoint (per node, per window).
    pub checkpoint_cost: HostDuration,
    /// Host cost of restoring one checkpoint (per rollback).
    pub rollback_cost: HostDuration,
    /// Host cost of the end-of-window consistency exchange (per window).
    pub gvt_cost: HostDuration,
    /// Fixed-point iteration cap per window.
    pub max_iterations: u32,
    /// Hard cap on windows (deadlock guard): a workload blocked on a
    /// receive nothing will satisfy would otherwise free-run forever.
    pub max_windows: u64,
}

impl OptimisticConfig {
    /// Creates a configuration with the paper's measured full-system costs
    /// (30 s per checkpoint and per restore) and a 1 ms window.
    pub fn new(base: ClusterConfig) -> Self {
        Self {
            base,
            window: SimDuration::from_millis(1),
            checkpoint_cost: HostDuration::from_secs(30),
            rollback_cost: HostDuration::from_secs(30),
            gvt_cost: HostDuration::from_micros(500),
            max_iterations: 256,
            max_windows: u64::MAX,
        }
    }

    /// Sets the window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        self.window = window;
        self
    }

    /// Sets checkpoint and rollback costs (e.g. zero, to study the
    /// algorithm without the full-system state penalty).
    pub fn with_costs(mut self, checkpoint: HostDuration, rollback: HostDuration) -> Self {
        self.checkpoint_cost = checkpoint;
        self.rollback_cost = rollback;
        self
    }
}

/// Outcome of an optimistic run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OptimisticRunResult {
    /// Modelled host wall-clock of the whole run.
    pub host_elapsed: HostDuration,
    /// Simulated completion time — exact, equal to the conservative ground
    /// truth's.
    pub sim_end: SimTime,
    /// Windows executed.
    pub windows: u64,
    /// Checkpoints taken (nodes × windows).
    pub checkpoints: u64,
    /// Rollbacks executed (node re-executions of a window).
    pub rollbacks: u64,
    /// Total simulated time re-executed due to rollbacks.
    pub wasted_sim: SimDuration,
    /// Committed fragment deliveries over the run (counted in the window
    /// each fragment *arrives* in — fragments still in flight when the last
    /// program finishes are not counted).
    pub total_packets: u64,
    /// Per-node outcomes.
    pub per_node: Vec<NodeResult>,
}

/// One fragment known to be heading to a node.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Inbound {
    pub(crate) arrival: SimTime,
    pub(crate) meta_id: MessageId,
    pub(crate) frag_index: u32,
    pub(crate) meta: MessageMetaOrd,
}

/// `MessageMeta` with a total order (for canonical inbound-set comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MessageMetaOrd {
    pub(crate) src: u32,
    pub(crate) seq: u64,
    pub(crate) tag: u32,
    pub(crate) bytes: u64,
    pub(crate) frag_count: u32,
}

impl From<MessageMeta> for MessageMetaOrd {
    fn from(m: MessageMeta) -> Self {
        Self {
            src: m.id.src.as_u32(),
            seq: m.id.seq,
            tag: m.tag.as_u32(),
            bytes: m.bytes,
            frag_count: m.frag_count,
        }
    }
}

impl MessageMetaOrd {
    pub(crate) fn to_meta(self) -> MessageMeta {
        MessageMeta {
            id: MessageId {
                src: Rank::new(self.src),
                seq: self.seq,
            },
            tag: aqs_node::Tag::new(self.tag),
            bytes: self.bytes,
            frag_count: self.frag_count,
        }
    }
}

/// A fragment sent during a window, before routing.
#[derive(Clone, Debug)]
struct SentFrag {
    src: usize,
    dst: SendTarget,
    departure: SimTime,
    meta: MessageMeta,
    frag_index: u32,
}

/// Persistent per-node execution state (what a checkpoint captures).
#[derive(Clone)]
struct NodeState {
    exec: NodeExecutor,
    sim: SimTime,
    pending: Option<(SimDuration, bool)>,
    outgoing: VecDeque<(SimTime, SendTarget, MessageMeta, u32)>,
    msg_seq: u64,
    done: bool,
}

/// Guest-time execution profile of one window run.
#[derive(Clone, Copy, Debug, Default)]
struct WindowProfile {
    active: SimDuration,
    idle: SimDuration,
}

/// Optimistic engine entry point with an explicit [`Recorder`]: the unified
/// `Sim` builder dispatches here (the historical `run_optimistic` free
/// function was deleted after five PRs of deprecation). Windows map onto
/// observability quanta; checkpoint and rollback events feed the
/// recorder's dedicated counters.
pub(crate) fn run_optimistic_impl<R: Recorder>(
    programs: Vec<Program>,
    cfg: &OptimisticConfig,
    mut rec: R,
) -> Result<(OptimisticRunResult, R), SimError> {
    assert!(programs.len() >= 2, "a cluster needs at least 2 nodes");
    for (i, p) in programs.iter().enumerate() {
        assert_eq!(p.rank().index(), i, "program {i} is for {}", p.rank());
    }
    let n = programs.len();
    let nic = cfg.base.nic;
    let mut speeds: Vec<HostSpeed> = (0..n)
        .map(|i| {
            HostSpeed::new(
                cfg.base.host_for(i),
                Rng::substream(cfg.base.seed, i as u64),
            )
        })
        .collect();
    let mut nodes: Vec<NodeState> = programs
        .into_iter()
        .map(|p| NodeState {
            exec: NodeExecutor::new(p, cfg.base.cpu),
            sim: SimTime::ZERO,
            pending: None,
            outgoing: VecDeque::new(),
            msg_seq: 0,
            done: false,
        })
        .collect();
    // Fragments already known to arrive at [node] beyond previous windows.
    let mut carried: Vec<Vec<Inbound>> = vec![Vec::new(); n];
    let mut host = HostTime::ZERO;
    let mut windows = 0u64;
    let mut checkpoints = 0u64;
    let mut rollbacks = 0u64;
    let mut wasted_sim = SimDuration::ZERO;
    let mut total_packets = 0u64;
    let mut scratch_lags: Vec<u64> = Vec::with_capacity(n);
    let mut finish_host: Vec<Option<HostTime>> = vec![None; n];

    let mut window_start = SimTime::ZERO;
    while nodes.iter().any(|s| !s.done) {
        let window_end = window_start + cfg.window;
        windows += 1;
        if windows > cfg.max_windows {
            return Err(SimError::QuantumCapExceeded {
                engine: EngineKind::Optimistic,
                max_quanta: cfg.max_windows,
            });
        }
        for speed in &mut speeds {
            speed.resample();
        }
        // Checkpoint every node.
        let snapshot: Vec<NodeState> = nodes.clone();
        checkpoints += n as u64;
        rec.record_checkpoints(n as u64);

        // Round 0: run with only the carried-over fragments.
        let mut inbound_used: Vec<Vec<Inbound>> = (0..n)
            .map(|i| {
                let mut v: Vec<Inbound> = carried[i]
                    .iter()
                    .filter(|f| f.arrival < window_end)
                    .cloned()
                    .collect();
                v.sort();
                v
            })
            .collect();
        let mut profiles: Vec<WindowProfile> = vec![WindowProfile::default(); n];
        let mut sends: Vec<Vec<SentFrag>> = vec![Vec::new(); n];
        let mut reexec_cost: Vec<u32> = vec![1; n]; // executions of this window
        for i in 0..n {
            let (profile, out) = run_window(
                &mut nodes[i],
                &inbound_used[i],
                window_start,
                window_end,
                &nic,
                i,
            );
            profiles[i] = profile;
            sends[i] = out;
        }

        // Fixed-point iteration: recompute inbound sets from the sends and
        // roll back whoever saw a different set.
        let mut iterations = 0u32;
        loop {
            iterations += 1;
            if iterations > cfg.max_iterations {
                return Err(SimError::WindowNonConvergence {
                    window_start,
                    max_iterations: cfg.max_iterations,
                });
            }
            let inbound_now = compute_inbound(&sends, &carried, n, window_end, nic.min_latency());
            let mut changed = false;
            for i in 0..n {
                if inbound_now[i] != inbound_used[i] {
                    changed = true;
                    rollbacks += 1;
                    let wasted = nodes[i].sim.saturating_duration_since(window_start);
                    wasted_sim += wasted;
                    rec.record_rollback(wasted);
                    // Restore the checkpoint and re-execute with the richer
                    // message set.
                    nodes[i] = snapshot[i].clone();
                    reexec_cost[i] += 1;
                    inbound_used[i] = inbound_now[i].clone();
                    let (profile, out) = run_window(
                        &mut nodes[i],
                        &inbound_used[i],
                        window_start,
                        window_end,
                        &nic,
                        i,
                    );
                    profiles[i] = profile;
                    sends[i] = out;
                }
            }
            if !changed {
                break;
            }
        }

        // Commit. The converged inbound sets are this window's deliveries:
        // each fragment is counted exactly once, in its arrival window.
        let delivered: u64 = inbound_used.iter().map(|v| v.len() as u64).sum();
        total_packets += delivered;
        if R::ENABLED {
            scratch_lags.clear();
            for p in &profiles {
                scratch_lags.push(p.idle.as_nanos());
            }
            rec.record_quantum(&QuantumObs {
                index: windows - 1,
                start: window_start,
                len: cfg.window,
                packets: delivered,
                active_nodes: n as u64,
                // Optimism is exact: no delivery is ever late.
                stragglers: 0,
                max_straggler_delay: SimDuration::ZERO,
                // There is no barrier; the per-node lanes carry the idle
                // share of the window's committed execution.
                barrier_wait_ns: &[],
                vt_lag_ns: &scratch_lags,
            });
        }
        // Carry forward fragments arriving beyond this window.
        let mut future: Vec<Vec<Inbound>> = vec![Vec::new(); n];
        for frags in &sends {
            for f in frags {
                for (dst, inb) in route_targets(f, n, nic.min_latency()) {
                    if inb.arrival >= window_end {
                        future[dst].push(inb);
                    }
                }
            }
        }
        for i in 0..n {
            carried[i].retain(|f| f.arrival >= window_end);
            carried[i].append(&mut future[i]);
        }

        // Host accounting: nodes ran in parallel; each paid its checkpoint,
        // its executions (first + re-executions) and its restores.
        let mut window_wall = HostDuration::ZERO;
        for i in 0..n {
            let one_exec = speeds[i].host_cost(profiles[i].active, false)
                + speeds[i].host_cost(profiles[i].idle, true);
            let execs = reexec_cost[i];
            let node_cost = cfg.checkpoint_cost
                + one_exec * execs as u64
                + cfg.rollback_cost * (execs - 1) as u64;
            window_wall = window_wall.max(node_cost);
        }
        host += window_wall + cfg.gvt_cost;
        for i in 0..n {
            if nodes[i].done && finish_host[i].is_none() {
                finish_host[i] = Some(host);
            }
        }
        window_start = window_end;
    }

    let per_node: Vec<NodeResult> = nodes
        .iter()
        .enumerate()
        .map(|(i, s)| NodeResult {
            rank: s.exec.rank(),
            finish_sim: s.exec.finish_time().expect("all programs finished"),
            finish_host: finish_host[i].expect("finish host recorded"),
            ops: s.exec.ops_executed(),
            messages_received: s.exec.messages_received(),
            regions: s.exec.regions().to_vec(),
        })
        .collect();
    let sim_end = per_node
        .iter()
        .map(|p| p.finish_sim)
        .max()
        .expect("two nodes");
    let result = OptimisticRunResult {
        host_elapsed: host - HostTime::ZERO,
        sim_end,
        windows,
        checkpoints,
        rollbacks,
        wasted_sim,
        total_packets,
        per_node,
    };
    Ok((result, rec))
}

/// Routes one sent fragment to its receiver(s) with exact arrival times.
fn route_targets(f: &SentFrag, n: usize, latency: SimDuration) -> Vec<(usize, Inbound)> {
    let arrival = f.departure + latency;
    let mk = || Inbound {
        arrival,
        meta_id: f.meta.id,
        frag_index: f.frag_index,
        meta: f.meta.into(),
    };
    match f.dst {
        SendTarget::Rank(r) => vec![(r.index(), mk())],
        SendTarget::All => (0..n).filter(|&d| d != f.src).map(|d| (d, mk())).collect(),
    }
}

/// Recomputes every node's inbound set (fragments arriving inside the
/// window) from the current round's sends plus the carried backlog.
fn compute_inbound(
    sends: &[Vec<SentFrag>],
    carried: &[Vec<Inbound>],
    n: usize,
    window_end: SimTime,
    latency: SimDuration,
) -> Vec<Vec<Inbound>> {
    let mut inbound: Vec<Vec<Inbound>> = (0..n)
        .map(|i| {
            carried[i]
                .iter()
                .filter(|f| f.arrival < window_end)
                .cloned()
                .collect()
        })
        .collect();
    for frags in sends {
        for f in frags {
            for (dst, inb) in route_targets(f, n, latency) {
                if inb.arrival < window_end {
                    inbound[dst].push(inb);
                }
            }
        }
    }
    for v in &mut inbound {
        v.sort();
    }
    inbound
}

/// Free-runs one node from its current position to the window end with the
/// given inbound fragments, returning its guest-time profile and sends.
fn run_window(
    node: &mut NodeState,
    inbound: &[Inbound],
    window_start: SimTime,
    window_end: SimTime,
    nic: &aqs_net::NicModel,
    node_index: usize,
) -> (WindowProfile, Vec<SentFrag>) {
    debug_assert!(
        node.sim == window_start || node.done,
        "node out of step with window"
    );
    for f in inbound {
        node.exec
            .deliver_fragment(f.meta.to_meta(), f.frag_index, f.arrival);
    }
    let mut profile = WindowProfile::default();
    let mut sends = Vec::new();
    while node.sim < window_end {
        // Drain any pending multi-window op first.
        if let Some((remaining, idle)) = node.pending.take() {
            let step = remaining.min(window_end - node.sim);
            node.sim += step;
            if idle {
                profile.idle += step;
            } else {
                profile.active += step;
            }
            // Fragments depart as their serialization completes — including
            // the part of a multi-window send that fits in this window.
            while let Some(&(dep, dst, meta, k)) = node.outgoing.front() {
                if dep > node.sim {
                    break;
                }
                node.outgoing.pop_front();
                sends.push(SentFrag {
                    src: node_index,
                    dst,
                    departure: dep,
                    meta,
                    frag_index: k,
                });
            }
            if step < remaining {
                node.pending = Some((remaining - step, idle));
                break;
            }
            continue;
        }
        match node.exec.next_action(node.sim) {
            Action::Advance { dur, ops: _, idle } => {
                node.pending = Some((dur, idle));
            }
            Action::Send { dst, bytes, tag } => {
                let sizes = nic.fragment_sizes(bytes);
                let meta = MessageMeta {
                    id: MessageId {
                        src: node.exec.rank(),
                        seq: node.msg_seq,
                    },
                    tag,
                    bytes,
                    frag_count: sizes.len() as u32,
                };
                node.msg_seq += 1;
                let mut t = node.sim;
                let mut total = SimDuration::ZERO;
                for (k, sz) in sizes.into_iter().enumerate() {
                    let ser = nic.serialization_delay(sz);
                    t += ser;
                    total += ser;
                    node.outgoing.push_back((t, dst, meta, k as u32));
                }
                node.pending = Some((total, false));
            }
            Action::WaitUntil(t) => {
                let target = t.min(window_end);
                profile.idle += target - node.sim;
                node.sim = target;
                if t >= window_end {
                    break;
                }
            }
            Action::Blocked => {
                profile.idle += window_end - node.sim;
                node.sim = window_end;
                break;
            }
            Action::Finished => {
                node.done = true;
                profile.idle += window_end - node.sim;
                node.sim = window_end;
                break;
            }
        }
    }
    node.sim = node.sim.max(window_end);
    (profile, sends)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{EngineKind, RunReport, Sim};
    use aqs_core::SyncConfig;
    use aqs_workloads::{burst, ping_pong};

    fn base() -> ClusterConfig {
        ClusterConfig::new(SyncConfig::ground_truth()).with_seed(4)
    }

    fn free_costs(window_us: u64) -> OptimisticConfig {
        OptimisticConfig::new(base())
            .with_window(SimDuration::from_micros(window_us))
            .with_costs(HostDuration::ZERO, HostDuration::ZERO)
    }

    /// Builder for an optimistic run with free (zero-cost) checkpoints.
    fn opt_free(programs: Vec<Program>, window_us: u64) -> Sim {
        Sim::new(programs)
            .engine(EngineKind::Optimistic)
            .config(base())
            .window(SimDuration::from_micros(window_us))
            .optimistic_costs(HostDuration::ZERO, HostDuration::ZERO)
    }

    fn opt(report: &RunReport) -> &OptimisticRunResult {
        report.detail.as_optimistic().expect("optimistic engine")
    }

    #[test]
    fn optimistic_timeline_equals_conservative_ground_truth() {
        let spec = burst(4, 100_000, 2048);
        let report = Sim::new(spec.programs.clone()).config(base()).run();
        let conservative = report.detail.as_deterministic().expect("det engine");
        let opt_report = opt_free(spec.programs, 20).run();
        let optimistic = opt(&opt_report);
        assert_eq!(
            optimistic.sim_end, conservative.sim_end,
            "optimism must be exact"
        );
        for (o, c) in optimistic.per_node.iter().zip(&conservative.per_node) {
            assert_eq!(o.finish_sim, c.finish_sim);
            assert_eq!(o.messages_received, c.messages_received);
            assert_eq!(o.regions, c.regions);
        }
    }

    #[test]
    fn ping_pong_rolls_back() {
        let spec = ping_pong(2, 5, 64);
        let report = opt_free(spec.programs, 50).run();
        let r = opt(&report);
        assert_eq!(r.per_node[0].messages_received, 5);
        assert!(r.rollbacks > 0, "in-window chains must cause rollbacks");
        assert!(r.wasted_sim > SimDuration::ZERO);
    }

    #[test]
    fn compute_only_never_rolls_back() {
        let programs = vec![
            aqs_node::ProgramBuilder::new(Rank::new(0))
                .compute(500_000)
                .build(),
            aqs_node::ProgramBuilder::new(Rank::new(1))
                .compute(800_000)
                .build(),
        ];
        let report = opt_free(programs, 100).run();
        let r = opt(&report);
        assert_eq!(r.rollbacks, 0);
        assert_eq!(r.checkpoints, 2 * r.windows);
    }

    #[test]
    fn checkpoint_costs_dominate_with_paper_numbers() {
        let spec = burst(4, 100_000, 2048);
        let cheap_report = opt_free(spec.programs.clone(), 20).run();
        // Default builder costs are the paper's 30 s checkpoint/restore.
        let paper_report = Sim::new(spec.programs)
            .engine(EngineKind::Optimistic)
            .config(base())
            .window(SimDuration::from_micros(20))
            .run();
        assert!(opt(&paper_report).host_elapsed > opt(&cheap_report).host_elapsed * 100);
    }

    #[test]
    fn smaller_windows_converge_faster_but_checkpoint_more() {
        let spec = ping_pong(2, 10, 64);
        let small_report = opt_free(spec.programs.clone(), 10).run();
        let large_report = opt_free(spec.programs, 200).run();
        let (small, large) = (opt(&small_report), opt(&large_report));
        assert!(small.windows > large.windows);
        assert_eq!(
            small.per_node[0].messages_received,
            large.per_node[0].messages_received
        );
    }

    #[test]
    fn flight_recorder_tracks_windows_checkpoints_and_rollbacks() {
        use aqs_obs::{FlightRecorder, ObsConfig};
        let spec = ping_pong(2, 5, 64);
        let (r, fr) = run_optimistic_impl(
            spec.programs.clone(),
            &free_costs(50),
            FlightRecorder::new(2, ObsConfig::new()),
        )
        .expect("run succeeds");
        assert_eq!(fr.total_quanta(), r.windows);
        assert_eq!(fr.checkpoints(), r.checkpoints);
        assert_eq!(fr.rollbacks(), r.rollbacks);
        assert_eq!(fr.wasted_sim(), r.wasted_sim);
        assert_eq!(fr.total_packets(), r.total_packets);
        // Ping-pong delivers every packet, so the optimistic delivery count
        // equals the conservative route count.
        let det = Sim::new(spec.programs).config(base()).run();
        assert_eq!(r.total_packets, det.total_packets);
    }

    #[test]
    #[should_panic(expected = "failed to converge")]
    fn runaway_window_hits_iteration_cap() {
        // A deep in-window chain with a tiny iteration budget.
        let spec = ping_pong(2, 50, 64);
        let _ = opt_free(spec.programs, 1000).max_iterations(3).run();
    }

    #[test]
    fn non_convergence_is_a_typed_error() {
        use crate::sim::SimError;
        let spec = ping_pong(2, 50, 64);
        let err = opt_free(spec.programs, 1000)
            .max_iterations(3)
            .try_run()
            .unwrap_err();
        assert!(
            matches!(
                err,
                SimError::WindowNonConvergence {
                    max_iterations: 3,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn a_deadlocked_workload_hits_the_window_cap_as_a_typed_error() {
        use crate::sim::SimError;
        // Rank 0 waits for a message rank 1 never sends; without the window
        // cap the free-running loop would never terminate.
        let starved = aqs_node::ProgramBuilder::new(Rank::new(0))
            .recv(Some(Rank::new(1)), aqs_node::Tag::new(0))
            .build();
        let silent = aqs_node::ProgramBuilder::new(Rank::new(1))
            .compute(10)
            .build();
        let err = opt_free(vec![starved, silent], 50)
            .max_quanta(100)
            .try_run()
            .unwrap_err();
        assert_eq!(
            err,
            SimError::QuantumCapExceeded {
                engine: EngineKind::Optimistic,
                max_quanta: 100,
            }
        );
    }
}
