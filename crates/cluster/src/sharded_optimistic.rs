//! Optimistic execution rebuilt on the sharded substrate (§5 direction):
//! N node simulators over M worker shards, per-shard checkpoint rings,
//! bounded cascade rollback, and the adaptive conservative/optimistic
//! hybrid policy.
//!
//! # Shape
//!
//! Windows are quanta: the same [`QuantumPolicy`] that drives the
//! conservative engines picks each window's length from the routed-packet
//! signal, and the [`TreeBarrier`] leader advances it exactly like the
//! sharded engine's leader. Within a window the engine runs a
//! *leader-centralized fixed point*:
//!
//! 1. **Execute** — each worker restores/advances its dirty nodes to the
//!    window edge, delivering the inbound fragment set the leader handed it
//!    and capturing every send into its shard cell.
//! 2. **Reduce** — the barrier leader (inside the barrier's exclusive
//!    section) re-routes *all* current-window sends through the shared
//!    arrival table and rebuilds each node's canonical sorted inbound
//!    set. Rebuilding from the full send set is an implicit anti-message:
//!    fragments from rolled-back executions vanish because they are simply
//!    not in the rebuilt set.
//! 3. **Commit or roll back** — every shard publishes its local virtual
//!    time into the [`GvtReduction`]; the leader overrides dirty shards
//!    with their earliest violated arrival and reduces the minimum to GVT.
//!    `GVT ≥ window_end` commits the window; otherwise only the dirty
//!    shards restore from their newest checkpoint and re-execute.
//!
//! # Bounded cascade, degrade-to-conservative
//!
//! A shard may re-execute a window at most `cascade_bound` times. At the
//! bound the shard *freezes* instead of unwinding further: late fragments
//! are snapped to the window boundary exactly like the conservative
//! engine's straggler rule (recorded as stragglers), and the shard runs the
//! next window conservatively. Rollback is therefore confined to the
//! offending shard — neighbors never unwind past their own bound, and a
//! runaway cascade degenerates into the conservative engine's semantics
//! rather than diverging.
//!
//! # The hybrid policy
//!
//! [`HybridPolicy`] makes the degrade/recover loop adaptive per shard:
//! a shard that re-executes `degrade_after`+ times in one window (its
//! rollback waste signal) switches to conservative execution; a
//! conservative shard that sees `recover_after` consecutive windows with no
//! boundary-snapped stragglers (its straggler-rate signal) switches back.
//! Conservative shards skip checkpoint cloning entirely — that is the
//! hybrid's wall-clock win on straggler-heavy workloads.
//!
//! # Bit-identity under `Q ≤ T`
//!
//! When every window length is at most the minimum network latency, any
//! fragment sent inside a window arrives at or after the window edge
//! (`arrival ≥ departure + T > window_start + Q = window_end`). Rebuilt
//! inbound sets then never differ from the delivered ones: zero rollbacks,
//! zero snaps, every delivery at its exact arrival — the committed timeline
//! is bit-identical to the deterministic engine for every worker count and
//! for both the pure and hybrid engines.

use crate::parallel::{busy_work, ParallelConfig, ParallelNodeResult};
use crate::sharded::{default_workers, partition, ArrivalTable};
use crate::sim::{EngineKind, SimError};
use crate::snapshot::ResumeSeed;
use aqs_core::QuantumPolicy;
use aqs_net::StragglerStats;
use aqs_node::{Action, MessageId, MessageMeta, NodeExecutor, Program, SendTarget};
use aqs_obs::{QuantumObs, Recorder};
use aqs_sync::{GvtReduction, TreeBarrier};
use aqs_time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::optimistic::Inbound;

/// Control word: stop the run.
const CTRL_STOP: u64 = u64::MAX;
/// Control word: repeat the current window (dirty shards re-execute).
const CTRL_REPEAT: u64 = u64::MAX - 1;
/// Cap on per-window trace vectors; past it the traces stop growing and
/// [`ShardedOptimisticRunResult::traces_truncated`] is set.
const TRACE_CAP: usize = 1 << 20;

/// Per-shard adaptive mode switching between conservative quantum sync and
/// optimistic checkpoint/rollback — the paper's adaptive idea applied to
/// the *mechanism* instead of only the quantum length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridPolicy {
    /// A shard that re-executes a window this many times (or hits the
    /// cascade bound) switches to conservative execution.
    pub degrade_after: u32,
    /// A conservative shard that sees this many consecutive windows with
    /// zero boundary-snapped stragglers switches back to optimistic.
    pub recover_after: u32,
}

impl Default for HybridPolicy {
    fn default() -> Self {
        Self {
            degrade_after: 2,
            recover_after: 2,
        }
    }
}

/// Engine-level knobs shared by the pure and hybrid variants.
#[derive(Clone, Debug)]
pub(crate) struct ShardedOptimisticOpts {
    /// Maximum re-executions of one window per shard before it freezes and
    /// degrades to conservative execution for the next window.
    pub(crate) cascade_bound: u32,
    /// Checkpoint ring depth (window-start snapshots retained per shard).
    pub(crate) ring_depth: usize,
    /// `Some` turns on per-shard adaptive mode switching (the hybrid
    /// engine); `None` is the pure optimistic engine, which only degrades
    /// a shard for the single window after a cascade-bound hit.
    pub(crate) hybrid: Option<HybridPolicy>,
}

impl Default for ShardedOptimisticOpts {
    fn default() -> Self {
        Self {
            cascade_bound: 8,
            ring_depth: 4,
            hybrid: None,
        }
    }
}

/// One per-shard mode transition, in commit order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeEvent {
    /// Committed window index after which the switch took effect.
    pub window: u64,
    /// The shard that switched.
    pub shard: u32,
    /// `true` when the shard entered conservative mode, `false` when it
    /// recovered to optimistic mode.
    pub conservative: bool,
}

/// Outcome of a sharded-optimistic (or hybrid) run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardedOptimisticRunResult {
    /// Real wall-clock the run took.
    pub wall: Duration,
    /// Simulated completion time (max across nodes).
    pub sim_end: SimTime,
    /// Committed windows.
    pub windows: u64,
    /// Packets routed (counted at commit, once per fan-out copy — the same
    /// route-time count the conservative engines report).
    pub total_packets: u64,
    /// Node-state checkpoints taken (conservative-mode shards skip them).
    pub checkpoints: u64,
    /// Node re-executions (each restores one node from its shard's newest
    /// checkpoint and replays the window).
    pub rollbacks: u64,
    /// Re-executed simulated time: one window length per rollback.
    pub wasted_sim: SimDuration,
    /// Deepest per-shard cascade observed in any single window.
    pub max_rollback_depth: u32,
    /// The configured cascade bound.
    pub cascade_bound: u32,
    /// Shard-windows that hit the cascade bound and froze (snapping late
    /// fragments instead of unwinding further).
    pub degraded_windows: u64,
    /// Shard-windows executed in conservative mode.
    pub conservative_windows: u64,
    /// Boundary-snapped stragglers (late fragments deferred to the window
    /// edge of a frozen or conservative shard).
    pub stragglers: StragglerStats,
    /// GVT after each committed window, in sim nanoseconds. Monotonically
    /// non-decreasing by construction: committed windows are final.
    pub gvt_trace: Vec<u64>,
    /// Each committed window's length in sim nanoseconds.
    pub window_len_trace: Vec<u64>,
    /// Node re-executions charged to each committed window.
    pub reexec_trace: Vec<u32>,
    /// `true` when the traces (and mode events) hit their cap and stopped
    /// growing; the scalar counters above are always exact.
    pub traces_truncated: bool,
    /// Per-shard mode transitions, in commit order.
    pub mode_events: Vec<ModeEvent>,
    /// Per-node outcomes, in rank order.
    pub per_node: Vec<ParallelNodeResult>,
    /// Worker (= shard) count the run actually used.
    pub workers: usize,
    /// Whether the hybrid policy was active.
    pub hybrid: bool,
}

impl ShardedOptimisticRunResult {
    /// Total messages received across nodes.
    pub fn messages_received_total(&self) -> u64 {
        self.per_node.iter().map(|n| n.messages_received).sum()
    }
}

/// A fragment captured at send time, before routing. `departure` already
/// includes the per-fragment serialization delay; routing it through the
/// [`ArrivalTable`] is a pure function, so the leader can re-route the full
/// send set every round with bit-identical results.
#[derive(Clone, Debug)]
struct WindowSend {
    dst: SendTarget,
    departure: SimTime,
    meta: MessageMeta,
    frag_index: u32,
    frag_bytes: u32,
}

/// Persistent per-node execution state — exactly what a checkpoint clones.
#[derive(Clone)]
struct OptNodeState {
    exec: NodeExecutor,
    sim: SimTime,
    /// Remainder of an op that did not fit in the previous window.
    pending: Option<SimDuration>,
    msg_seq: u64,
}

/// One shard's worker↔leader exchange surface. The owning worker locks it
/// for the duration of its execution round; the leader locks each cell
/// inside the barrier's exclusive section while all workers are parked —
/// both sides always take the lock uncontended.
struct ShardCell {
    /// Per local node: sends captured by the latest execution this window.
    sends: Vec<Vec<WindowSend>>,
    /// Per local node: finished flag as of the latest execution.
    done: Vec<bool>,
    /// Per local node: leader → worker "execute this node this round".
    run: Vec<bool>,
    /// Per local node: the full inbound set to deliver before executing.
    inbound: Vec<Vec<Inbound>>,
    /// Mode for the current window (set by the leader at the previous
    /// commit). Conservative shards skip checkpoint cloning.
    conservative: bool,
}

/// Shared state across worker threads.
struct SharedOpt<R> {
    nic: aqs_net::NicModel,
    arrivals: ArrivalTable,
    opts: ShardedOptimisticOpts,
    ranges: Vec<Range<usize>>,
    cells: Vec<Mutex<ShardCell>>,
    /// Per-shard LVT slots + the monotone GVT cell the leader reduces.
    gvt: GvtReduction,
    /// Next action: a window-end in sim ns, [`CTRL_REPEAT`], or
    /// [`CTRL_STOP`]. Written by the leader inside the barrier's exclusive
    /// section, ordered for workers by the epoch handshake.
    control: AtomicU64,
    /// Per-shard executed-node counters for the current window (repeat
    /// rounds accumulate). Only maintained when recording is enabled; the
    /// leader drains them at commit for the [`QuantumObs`] activity field.
    active: Vec<AtomicU64>,
    /// Deadlock/divergence guard (checked after join, where panicking is
    /// safe).
    overflow: AtomicBool,
    barrier: TreeBarrier<OptLeader<R>>,
}

/// The barrier leader's state: all cross-shard bookkeeping lives here and
/// is only ever touched inside the barrier's exclusive section.
struct OptLeader<R> {
    policy: Box<dyn QuantumPolicy>,
    rec: R,
    n: usize,
    windows: u64,
    q_start_nanos: u64,
    q_end_nanos: u64,
    max_quanta: u64,
    /// Per global node: round-0 inbound set of the current window (carried
    /// fragments landing inside it). Fixed for the window's duration.
    base: Vec<Vec<Inbound>>,
    /// Per global node: the inbound set its latest execution delivered.
    used: Vec<Vec<Inbound>>,
    /// Per global node: sends of its latest execution this window.
    sends: Vec<Vec<WindowSend>>,
    /// Per global node: fragments committed in earlier windows that have
    /// not yet been delivered (arrival at or past the current window end).
    carried: Vec<Vec<Inbound>>,
    /// Per global node: scheduled to run this round (results to pull).
    scheduled: Vec<bool>,
    done: Vec<bool>,
    // Per-shard, current window:
    reexecs: Vec<u32>,
    frozen: Vec<bool>,
    conservative: Vec<bool>,
    /// Pure engine: the current conservative window was forced by a bound
    /// hit and reverts to optimistic at the next commit.
    forced: Vec<bool>,
    /// Hybrid: consecutive conservative windows with zero snapped-in
    /// stragglers.
    clean_streak: Vec<u32>,
    /// Boundary snaps into each shard during the current window's commit.
    snaps_in: Vec<u64>,
    shard_ckpt: Vec<u64>,
    shard_rb: Vec<u64>,
    shard_waste: Vec<u64>,
    window_reexec_nodes: u32,
    repeat_rounds: u32,
    // Run totals:
    total_packets: u64,
    checkpoints: u64,
    rollbacks: u64,
    wasted_ns: u64,
    stragglers: StragglerStats,
    max_depth: u32,
    degraded_windows: u64,
    conservative_windows: u64,
    gvt_trace: Vec<u64>,
    window_len_trace: Vec<u64>,
    reexec_trace: Vec<u32>,
    traces_truncated: bool,
    mode_events: Vec<ModeEvent>,
    /// Scratch for draining the per-shard activity counters at commit.
    shard_actives: Vec<u64>,
}

fn push_capped<T>(v: &mut Vec<T>, x: T, truncated: &mut bool) {
    if v.len() < TRACE_CAP {
        v.push(x);
    } else {
        *truncated = true;
    }
}

/// Earliest arrival involved in the first divergence between two sorted
/// inbound sets — the shard's local virtual time when it must roll back.
fn divergence_nanos(a: &[Inbound], b: &[Inbound]) -> u64 {
    let mut i = 0;
    while i < a.len() && i < b.len() {
        if a[i] != b[i] {
            return a[i].arrival.as_nanos().min(b[i].arrival.as_nanos());
        }
        i += 1;
    }
    if i < a.len() {
        a[i].arrival.as_nanos()
    } else if i < b.len() {
        b[i].arrival.as_nanos()
    } else {
        u64::MAX
    }
}

/// Routes the snapshot's cut-in-flight fragments into per-node [`Inbound`]
/// sets ahead of the first resumed window. Arrivals before the cut are
/// snapped to it (the conservative straggler rule, recorded); the caller
/// partitions the sets by the first window edge exactly like
/// `commit_window`'s open-next-window path.
fn route_seed_frags(
    seed: &ResumeSeed,
    nic: &aqs_net::NicModel,
    arrivals: &ArrivalTable,
    n: usize,
) -> Result<(Vec<Vec<Inbound>>, u64, StragglerStats), SimError> {
    let mut injected: Vec<Vec<Inbound>> = vec![Vec::new(); n];
    let mut count = 0u64;
    let mut stragglers = StragglerStats::default();
    for pf in &seed.frags {
        let src = pf.src as usize;
        if src >= n {
            return Err(SimError::snapshot_format(format!(
                "in-flight fragment from node {src}, but the cluster has {n} nodes"
            )));
        }
        let base = nic.earliest_arrival(pf.frag.departure);
        let deliver_to =
            |t: usize, injected: &mut Vec<Vec<Inbound>>, stragglers: &mut StragglerStats| {
                let arrival = base
                    + SimDuration::from_nanos(arrivals.transit_nanos(
                        src,
                        t,
                        pf.frag.bytes,
                        pf.frag.departure,
                    ));
                let eff = if arrival < seed.q_start {
                    stragglers.record(seed.q_start - arrival);
                    seed.q_start
                } else {
                    arrival
                };
                injected[t].push(Inbound {
                    arrival: eff,
                    meta_id: pf.frag.meta.id,
                    frag_index: pf.frag.frag_index,
                    meta: pf.frag.meta.into(),
                });
            };
        match pf.frag.dst {
            Some(r) => {
                let t = r as usize;
                if t >= n {
                    return Err(SimError::snapshot_format(format!(
                        "in-flight fragment for node {t}, but the cluster has {n} nodes"
                    )));
                }
                deliver_to(t, &mut injected, &mut stragglers);
                count += 1;
            }
            None => {
                for t in (0..n).filter(|&t| t != src) {
                    deliver_to(t, &mut injected, &mut stragglers);
                    count += 1;
                }
            }
        }
    }
    Ok((injected, count, stragglers))
}

/// Sharded-optimistic engine entry point with an explicit [`Recorder`];
/// the unified `Sim` builder dispatches here. `workers` of `None` uses the
/// host's available parallelism; the count is clamped to `[1, n]`.
///
/// With `resume`, the run starts at the snapshot's cut instead of time
/// zero: restored node states seed the first checkpoint, the cut's
/// in-flight fragments become the first window's base inbound sets (or
/// carried fragments, if they land past its edge), and the run counters
/// continue from their captured values.
///
/// # Panics
///
/// Panics if fewer than two programs are given or program *i* is not for
/// rank *i*. A window-cap overflow (deadlock guard) is a typed
/// [`SimError::QuantumCapExceeded`], not a panic.
pub(crate) fn run_sharded_optimistic_impl<R: Recorder>(
    programs: Vec<Program>,
    config: &ParallelConfig,
    workers: Option<usize>,
    opts: ShardedOptimisticOpts,
    recorder: R,
    resume: Option<&ResumeSeed>,
) -> Result<(ShardedOptimisticRunResult, R), SimError> {
    assert!(programs.len() >= 2, "a cluster needs at least 2 nodes");
    for (i, p) in programs.iter().enumerate() {
        assert_eq!(p.rank().index(), i, "program {i} is for {}", p.rank());
    }
    let n = programs.len();
    if let Some(s) = resume {
        if s.nodes.len() != n {
            return Err(SimError::snapshot_format(format!(
                "snapshot has {} nodes, simulation has {n}",
                s.nodes.len()
            )));
        }
    }
    let m = workers.unwrap_or_else(default_workers).clamp(1, n);
    let ranges = partition(n, m);
    let mut policy = config.sync.build();
    let q0 = policy.initial_quantum();
    if let Some(s) = resume {
        policy
            .load_state(&s.policy_state)
            .map_err(SimError::snapshot_format)?;
    }
    let q_start_nanos = resume.map_or(0, |s| s.q_start.as_nanos());
    let q_end0 = resume.map_or(q0.as_nanos(), |s| (s.q_start + s.q_len).as_nanos());
    let hybrid = opts.hybrid.is_some();
    let engine_kind = if hybrid {
        EngineKind::Hybrid
    } else {
        EngineKind::ShardedOptimistic
    };
    let cascade_bound = opts.cascade_bound;
    let arrivals = ArrivalTable::build(&config.switch, n);
    let (injected, inject_count, inject_stragglers) = match resume {
        Some(s) => route_seed_frags(s, &config.nic, &arrivals, n)?,
        None => (vec![Vec::new(); n], 0, StragglerStats::default()),
    };
    let mut states_init: Vec<Option<OptNodeState>> = Vec::with_capacity(n);
    for (i, program) in programs.into_iter().enumerate() {
        states_init.push(Some(match resume {
            Some(s) => {
                let ns = &s.nodes[i];
                OptNodeState {
                    exec: NodeExecutor::from_state(program, config.cpu, ns.exec.clone())
                        .map_err(|e| SimError::snapshot_format(format!("node {i}: {e}")))?,
                    sim: s.q_start,
                    pending: ns.pending,
                    msg_seq: ns.msg_seq,
                }
            }
            None => OptNodeState {
                exec: NodeExecutor::new(program, config.cpu),
                sim: SimTime::ZERO,
                pending: None,
                msg_seq: 0,
            },
        }));
    }
    let mut run_stragglers = resume.map_or_else(StragglerStats::default, |s| s.stragglers);
    run_stragglers.merge(&inject_stragglers);
    let mut leader = OptLeader {
        policy,
        rec: recorder,
        n,
        windows: resume.map_or(0, |s| s.quanta),
        q_start_nanos,
        q_end_nanos: q_end0,
        max_quanta: config.max_quanta,
        base: vec![Vec::new(); n],
        used: vec![Vec::new(); n],
        sends: vec![Vec::new(); n],
        carried: vec![Vec::new(); n],
        scheduled: vec![true; n],
        done: resume.map_or_else(
            || vec![false; n],
            |s| s.nodes.iter().map(|x| x.done).collect(),
        ),
        reexecs: vec![0; m],
        frozen: vec![false; m],
        conservative: vec![false; m],
        forced: vec![false; m],
        clean_streak: vec![0; m],
        snaps_in: vec![0; m],
        shard_ckpt: vec![0; m],
        shard_rb: vec![0; m],
        shard_waste: vec![0; m],
        window_reexec_nodes: 0,
        repeat_rounds: 0,
        total_packets: resume.map_or(0, |s| s.total_packets) + inject_count,
        checkpoints: 0,
        rollbacks: 0,
        wasted_ns: 0,
        stragglers: run_stragglers,
        max_depth: 0,
        degraded_windows: 0,
        conservative_windows: 0,
        gvt_trace: Vec::new(),
        window_len_trace: Vec::new(),
        reexec_trace: Vec::new(),
        traces_truncated: false,
        mode_events: Vec::new(),
        shard_actives: Vec::with_capacity(m),
    };
    // Partition the injected fragments by the first window edge exactly
    // like `commit_window`'s open-next-window path: arrivals inside the
    // window become the round-0 base/used sets, the rest stay carried.
    for (i, frags) in injected.into_iter().enumerate() {
        let (mut inside, rest): (Vec<Inbound>, Vec<Inbound>) = frags
            .into_iter()
            .partition(|e| e.arrival.as_nanos() < q_end0);
        inside.sort();
        leader.carried[i] = rest;
        leader.base[i] = inside.clone();
        leader.used[i] = inside;
    }
    // The first window checkpoints every shard (all start optimistic).
    for (s, range) in ranges.iter().enumerate() {
        leader.shard_ckpt[s] = range.len() as u64;
    }
    leader.checkpoints = n as u64;
    if R::ENABLED {
        leader.rec.record_checkpoints(n as u64);
    }
    let cells = ranges
        .iter()
        .map(|range| {
            let len = range.len();
            Mutex::new(ShardCell {
                sends: vec![Vec::new(); len],
                done: vec![false; len],
                run: vec![true; len],
                inbound: range.clone().map(|g| leader.used[g].clone()).collect(),
                conservative: false,
            })
        })
        .collect();
    let start = Instant::now();
    let shared = SharedOpt {
        nic: config.nic,
        arrivals,
        opts,
        ranges: ranges.clone(),
        cells,
        gvt: GvtReduction::new(m),
        control: AtomicU64::new(q_end0),
        active: (0..m).map(|_| AtomicU64::new(0)).collect(),
        overflow: AtomicBool::new(false),
        barrier: TreeBarrier::new(m, leader),
    };
    let joined: Vec<Vec<ParallelNodeResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(w, range)| {
                let shard: Vec<OptNodeState> = range
                    .clone()
                    .map(|i| states_init[i].take().expect("each node state taken once"))
                    .collect();
                let shared = &shared;
                scope.spawn(move || worker_thread(w, shard, config, shared))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    if shared.overflow.load(Ordering::Acquire) {
        return Err(SimError::QuantumCapExceeded {
            engine: engine_kind,
            max_quanta: config.max_quanta,
        });
    }
    let wall = start.elapsed();
    let mut per_node = Vec::with_capacity(n);
    for nodes in joined {
        per_node.extend(nodes);
    }
    let sim_end = per_node
        .iter()
        .map(|r| r.finish_sim)
        .max()
        .expect("at least two nodes");
    let leader = shared.barrier.into_state();
    let result = ShardedOptimisticRunResult {
        wall,
        sim_end,
        windows: leader.windows,
        total_packets: leader.total_packets,
        checkpoints: leader.checkpoints,
        rollbacks: leader.rollbacks,
        wasted_sim: SimDuration::from_nanos(leader.wasted_ns),
        max_rollback_depth: leader.max_depth,
        cascade_bound,
        degraded_windows: leader.degraded_windows,
        conservative_windows: leader.conservative_windows,
        stragglers: leader.stragglers,
        gvt_trace: leader.gvt_trace,
        window_len_trace: leader.window_len_trace,
        reexec_trace: leader.reexec_trace,
        traces_truncated: leader.traces_truncated,
        mode_events: leader.mode_events,
        per_node,
        workers: m,
        hybrid,
    };
    Ok((result, leader.rec))
}

/// Runs one shard to completion; returns its nodes' results in rank order.
fn worker_thread<R: Recorder>(
    w: usize,
    shard: Vec<OptNodeState>,
    config: &ParallelConfig,
    shared: &SharedOpt<R>,
) -> Vec<ParallelNodeResult> {
    let mut states: Vec<OptNodeState> = shard;
    let mut ring: VecDeque<Vec<OptNodeState>> = VecDeque::new();
    let mut window_start = SimTime::ZERO;
    let mut window_end = SimTime::ZERO;
    // Per local node: next sim time the node can act on its own
    // (`u64::MAX` = parked until a delivery, 0 = run unconditionally).
    // Refreshed by every execution; the first window runs everyone.
    let mut wakes: Vec<u64> = vec![0; states.len()];
    loop {
        let ctrl = shared.control.load(Ordering::Relaxed);
        if ctrl == CTRL_STOP {
            break;
        }
        let repeat = ctrl == CTRL_REPEAT;
        let mut executed = 0u64;
        {
            let mut cell = shared.cells[w].lock().expect("shard cell poisoned");
            if !repeat {
                window_start = window_end;
                window_end = SimTime::from_nanos(ctrl);
                if !cell.conservative {
                    // Copy-on-advance: snapshot the shard at the window
                    // start. Conservative shards never roll back and skip
                    // the clone — the hybrid's checkpoint saving. The clone
                    // is deliberately eager (it includes nodes the
                    // active-set skip below will not execute): the
                    // checkpoint accounting and the rollback restore path
                    // both assume every optimistic window snapshots the
                    // whole shard.
                    ring.push_back(states.clone());
                    while ring.len() > shared.opts.ring_depth.max(1) {
                        ring.pop_front();
                    }
                }
            }
            for l in 0..states.len() {
                if !cell.run[l] {
                    continue;
                }
                cell.run[l] = false;
                // Active-set skip: a node whose own next wake lies at or
                // beyond the window edge (an event at exactly `window_end`
                // is the next window's first instant), with nothing inbound,
                // can only poll — its sends stay empty and its done flag
                // keeps its previous value, which is exactly what the leader
                // reads for an unexecuted node. Repeat rounds never skip: a
                // dirty node's rebuilt inbound set may legitimately be empty.
                if !repeat
                    && !config.full_sweep
                    && cell.inbound[l].is_empty()
                    && wakes[l] >= window_end.as_nanos()
                {
                    continue;
                }
                if repeat {
                    #[allow(unused_mut)]
                    let mut idx = ring.len() - 1;
                    #[cfg(feature = "fault-inject")]
                    if crate::fault::armed(crate::fault::Fault::StaleCheckpointRestore)
                        && ring.len() >= 2
                    {
                        // Armable bug: restore from the second-newest ring
                        // entry, jumping the node back one extra window.
                        idx = ring.len() - 2;
                    }
                    states[l] = ring[idx][l].clone();
                }
                // Fast-forward a node that slept through earlier windows
                // (or was restored from a checkpoint cloned while it
                // slept): its sim still sits at the edge of its last
                // executed window, where a full sweep would have dragged it
                // to every edge since. Skipped time is idle by
                // construction, so the jump is exact.
                if states[l].sim < window_start {
                    states[l].sim = window_start;
                }
                let inbound = std::mem::take(&mut cell.inbound[l]);
                for f in &inbound {
                    states[l]
                        .exec
                        .deliver_fragment(f.meta.to_meta(), f.frag_index, f.arrival);
                }
                let (sends, wake) = run_node_window(
                    &mut states[l],
                    window_end,
                    &shared.nic,
                    config.host_work_per_op,
                );
                cell.sends[l] = sends;
                wakes[l] = wake;
                cell.done[l] = states[l].exec.finished();
                executed += 1;
            }
        }
        if R::ENABLED {
            shared.active[w].fetch_add(executed, Ordering::Relaxed);
        }
        shared.gvt.publish_lvt(w, window_end.as_nanos());
        shared
            .barrier
            .arrive(w, |leader| leader_step(shared, leader));
    }
    states
        .into_iter()
        .map(|s| ParallelNodeResult {
            rank: s.exec.rank(),
            finish_sim: s.exec.finish_time().unwrap_or(s.sim),
            ops: s.exec.ops_executed(),
            messages_received: s.exec.messages_received(),
            regions: s.exec.regions().to_vec(),
        })
        .collect()
}

/// Advances one node to the window edge — the sharded engine's inner loop
/// (sends complete atomically, ops pend across edges), except that sends
/// are captured for the leader to route instead of being routed in place.
///
/// Also returns the node's next wake time in sim nanoseconds: `u64::MAX`
/// for a node that can only proceed on a delivery (blocked or finished),
/// the wait target for a timer parked past the window edge, and 0 (run
/// unconditionally) otherwise.
fn run_node_window(
    state: &mut OptNodeState,
    window_end: SimTime,
    nic: &aqs_net::NicModel,
    host_work_per_op: f64,
) -> (Vec<WindowSend>, u64) {
    let mut sends = Vec::new();
    let mut wake = 0u64;
    while state.sim < window_end {
        if let Some(remaining) = state.pending.take() {
            let step = remaining.min(window_end - state.sim);
            state.sim += step;
            if step < remaining {
                state.pending = Some(remaining - step);
                break; // window boundary reached mid-op
            }
            continue;
        }
        match state.exec.next_action(state.sim) {
            Action::Advance { dur, ops, idle } => {
                if !idle && host_work_per_op > 0.0 && ops > 0 {
                    busy_work(ops as f64 * host_work_per_op);
                }
                state.pending = Some(dur);
            }
            Action::Send { dst, bytes, tag } => {
                let frag_count = nic.fragment_count(bytes);
                let meta = MessageMeta {
                    id: MessageId {
                        src: state.exec.rank(),
                        seq: state.msg_seq,
                    },
                    tag,
                    bytes,
                    frag_count,
                };
                state.msg_seq += 1;
                for k in 0..frag_count {
                    let sz = nic.fragment_size(bytes, k);
                    state.sim += nic.serialization_delay(sz);
                    sends.push(WindowSend {
                        dst,
                        departure: state.sim,
                        meta,
                        frag_index: k,
                        frag_bytes: sz,
                    });
                }
            }
            Action::WaitUntil(t) => {
                state.sim = t.min(window_end);
                if t >= window_end {
                    wake = t.as_nanos();
                    break;
                }
            }
            Action::Blocked => {
                state.sim = window_end;
                wake = u64::MAX;
                break;
            }
            Action::Finished => {
                state.sim = window_end;
                wake = u64::MAX;
                break;
            }
        }
    }
    state.sim = state.sim.max(window_end);
    (sends, wake)
}

/// Fan-out targets of one send (unicast or broadcast-to-all-but-self).
fn for_each_target(dst: SendTarget, src: usize, n: usize, mut f: impl FnMut(usize)) {
    match dst {
        SendTarget::Rank(r) => f(r.as_u32() as usize),
        SendTarget::All => {
            for t in 0..n {
                if t != src {
                    f(t);
                }
            }
        }
    }
}

fn inbound_key(e: &Inbound) -> (u32, u64, u32) {
    (e.meta_id.src.as_u32(), e.meta_id.seq, e.frag_index)
}

/// The barrier leader's round: pull results, rebuild canonical inbound
/// sets, then either schedule rollbacks (GVT below the window edge) or
/// commit the window and open the next one.
fn leader_step<R: Recorder>(shared: &SharedOpt<R>, leader: &mut OptLeader<R>) {
    let n = leader.n;
    let m = shared.ranges.len();
    let window_end = leader.q_end_nanos;
    // 1. Pull sends and done flags for every node that ran this round.
    for (s, range) in shared.ranges.iter().enumerate() {
        let mut cell = shared.cells[s].lock().expect("shard cell poisoned");
        for (l, g) in range.clone().enumerate() {
            if leader.scheduled[g] {
                leader.scheduled[g] = false;
                leader.sends[g] = std::mem::take(&mut cell.sends[l]);
                leader.done[g] = cell.done[l];
            }
        }
    }
    // 2. Re-route every current-window send and rebuild the canonical
    // sorted inbound sets (base ∪ in-window arrivals); fragments landing at
    // or past the edge go to the future list for the commit path.
    let mut new_sets: Vec<Vec<Inbound>> = leader.base.clone();
    let mut future: Vec<Vec<Inbound>> = vec![Vec::new(); n];
    let mut routed: u64 = 0;
    for src in 0..n {
        for f in &leader.sends[src] {
            for_each_target(f.dst, src, n, |t| {
                let base = shared.nic.earliest_arrival(f.departure);
                let arrival = base
                    + SimDuration::from_nanos(shared.arrivals.transit_nanos(
                        src,
                        t,
                        f.frag_bytes,
                        f.departure,
                    ));
                routed += 1;
                let inb = Inbound {
                    arrival,
                    meta_id: f.meta.id,
                    frag_index: f.frag_index,
                    meta: f.meta.into(),
                };
                if arrival.as_nanos() < window_end {
                    new_sets[t].push(inb);
                } else {
                    future[t].push(inb);
                }
            });
        }
    }
    for set in &mut new_sets {
        set.sort();
    }
    // 3. Dirty detection: only optimistic, unfrozen shards unwind. A shard
    // at the cascade bound freezes — its late fragments will be snapped to
    // the boundary at commit instead of unwinding neighbors further.
    let mut dirty: Vec<(usize, Vec<usize>)> = Vec::new();
    for (s, range) in shared.ranges.iter().enumerate() {
        if leader.conservative[s] || leader.frozen[s] {
            continue;
        }
        let changed: Vec<usize> = range
            .clone()
            .filter(|&i| new_sets[i] != leader.used[i])
            .collect();
        if changed.is_empty() {
            continue;
        }
        if leader.reexecs[s] >= shared.opts.cascade_bound {
            leader.frozen[s] = true;
        } else {
            dirty.push((s, changed));
        }
    }
    // 4. GVT: workers published LVT = window_end on arrival; the leader
    // overrides each dirty shard with its earliest violated arrival and
    // reduces the minimum. The window commits only once GVT reaches its
    // edge.
    for (s, nodes) in &dirty {
        let lvt = nodes
            .iter()
            .map(|&i| divergence_nanos(&new_sets[i], &leader.used[i]))
            .min()
            .unwrap_or(u64::MAX)
            .min(window_end);
        shared.gvt.publish_lvt(*s, lvt);
    }
    #[allow(unused_mut)]
    let mut gvt_val = shared.gvt.reduce();
    #[cfg(feature = "fault-inject")]
    if crate::fault::armed(crate::fault::Fault::GvtFromOneShard) {
        // Armable bug: GVT from shard 0's LVT alone — windows commit while
        // another shard still holds a violation, silently dropping its
        // scheduled re-execution.
        gvt_val = shared.gvt.lvt(0);
    }
    if gvt_val < window_end {
        // 5. Roll back: only the offending shards restore and re-execute.
        let window_len = window_end - leader.q_start_nanos;
        for (s, nodes) in dirty {
            leader.reexecs[s] += 1;
            leader.max_depth = leader.max_depth.max(leader.reexecs[s]);
            let range = shared.ranges[s].clone();
            let mut cell = shared.cells[s].lock().expect("shard cell poisoned");
            for i in nodes {
                let l = i - range.start;
                #[allow(unused_mut)]
                let mut full = true;
                #[cfg(feature = "fault-inject")]
                if crate::fault::armed(crate::fault::Fault::RollbackMailboxSkip) {
                    full = false;
                }
                cell.inbound[l] = if full {
                    new_sets[i].clone()
                } else {
                    // Armable bug: re-deliver only the delta — the restored
                    // node never re-receives its earlier deliveries.
                    new_sets[i]
                        .iter()
                        .filter(|e| !leader.used[i].contains(e))
                        .cloned()
                        .collect()
                };
                cell.run[l] = true;
                leader.used[i] = std::mem::take(&mut new_sets[i]);
                leader.scheduled[i] = true;
                leader.rollbacks += 1;
                leader.wasted_ns += window_len;
                leader.shard_rb[s] += 1;
                leader.shard_waste[s] += window_len;
                leader.window_reexec_nodes += 1;
                if R::ENABLED {
                    leader
                        .rec
                        .record_rollback(SimDuration::from_nanos(window_len));
                }
            }
        }
        leader.repeat_rounds += 1;
        let guard = (m as u32) * (shared.opts.cascade_bound + 2) + 8;
        if leader.repeat_rounds > guard {
            // Cannot panic while peers wait on the barrier — flag and stop.
            shared.overflow.store(true, Ordering::Relaxed);
            shared.control.store(CTRL_STOP, Ordering::Relaxed);
        } else {
            shared.control.store(CTRL_REPEAT, Ordering::Relaxed);
        }
        return;
    }
    commit_window(shared, leader, new_sets, future, routed, gvt_val);
}

/// Commits the current window and opens the next one (or stops the run).
fn commit_window<R: Recorder>(
    shared: &SharedOpt<R>,
    leader: &mut OptLeader<R>,
    new_sets: Vec<Vec<Inbound>>,
    future: Vec<Vec<Inbound>>,
    routed: u64,
    gvt_val: u64,
) {
    let m = shared.ranges.len();
    let window_end = leader.q_end_nanos;
    let window_len = window_end - leader.q_start_nanos;
    let edge = SimTime::from_nanos(window_end);
    // Late fragments into conservative or frozen shards are snapped to the
    // window edge — the conservative engine's straggler rule. Fragments
    // whose arrival merely shifted earlier were already delivered at the
    // later time; they are recorded as stragglers but not re-delivered.
    let mut window_stragglers = StragglerStats::default();
    for (s, range) in shared.ranges.iter().enumerate() {
        if !(leader.conservative[s] || leader.frozen[s]) {
            continue;
        }
        for i in range.clone() {
            if new_sets[i] == leader.used[i] {
                continue;
            }
            let used_at: HashMap<(u32, u64, u32), u64> = leader.used[i]
                .iter()
                .map(|e| (inbound_key(e), e.arrival.as_nanos()))
                .collect();
            for e in &new_sets[i] {
                match used_at.get(&inbound_key(e)) {
                    None => {
                        window_stragglers.record(edge - e.arrival);
                        leader.snaps_in[s] += 1;
                        leader.carried[i].push(Inbound {
                            arrival: edge,
                            meta_id: e.meta_id,
                            frag_index: e.frag_index,
                            meta: e.meta,
                        });
                    }
                    Some(&ua) if ua != e.arrival.as_nanos() => {
                        window_stragglers
                            .record(SimDuration::from_nanos(ua.abs_diff(e.arrival.as_nanos())));
                        leader.snaps_in[s] += 1;
                    }
                    _ => {}
                }
            }
        }
    }
    for (i, fut) in future.into_iter().enumerate() {
        leader.carried[i].extend(fut);
    }
    leader.total_packets += routed;
    if R::ENABLED {
        leader.shard_actives.clear();
        for slot in &shared.active {
            leader.shard_actives.push(slot.swap(0, Ordering::Relaxed));
        }
        let active_total: u64 = leader.shard_actives.iter().sum();
        leader.rec.record_quantum(&QuantumObs {
            index: leader.windows,
            start: SimTime::from_nanos(leader.q_start_nanos),
            len: SimDuration::from_nanos(window_len),
            packets: routed,
            // Node executions charged to this window, re-execution rounds
            // included — can exceed the node count under rollback.
            active_nodes: active_total,
            stragglers: window_stragglers.count(),
            max_straggler_delay: window_stragglers.max_delay(),
            barrier_wait_ns: &[],
            vt_lag_ns: &[],
        });
        leader.rec.record_shard_activity(&leader.shard_actives);
        leader.rec.record_shard_rollbacks(
            &leader.shard_ckpt,
            &leader.shard_rb,
            &leader.shard_waste,
        );
    }
    leader.stragglers.merge(&window_stragglers);
    for s in 0..m {
        leader.shard_ckpt[s] = 0;
        leader.shard_rb[s] = 0;
        leader.shard_waste[s] = 0;
    }
    let truncated = &mut leader.traces_truncated;
    push_capped(&mut leader.gvt_trace, gvt_val, truncated);
    push_capped(&mut leader.window_len_trace, window_len, truncated);
    push_capped(
        &mut leader.reexec_trace,
        leader.window_reexec_nodes,
        truncated,
    );
    // Mode transitions for the next window.
    for s in 0..m {
        if leader.frozen[s] {
            leader.degraded_windows += 1;
        }
        if leader.conservative[s] {
            leader.conservative_windows += 1;
        }
        let next = match shared.opts.hybrid {
            Some(h) => {
                if !leader.conservative[s] {
                    leader.frozen[s] || leader.reexecs[s] >= h.degrade_after
                } else if leader.snaps_in[s] == 0 {
                    leader.clean_streak[s] += 1;
                    if leader.clean_streak[s] >= h.recover_after {
                        leader.clean_streak[s] = 0;
                        false
                    } else {
                        true
                    }
                } else {
                    leader.clean_streak[s] = 0;
                    true
                }
            }
            None => {
                // Pure engine: one forced conservative window per bound
                // hit, then straight back to optimistic execution.
                if leader.frozen[s] {
                    leader.forced[s] = true;
                    true
                } else if leader.conservative[s] && leader.forced[s] {
                    leader.forced[s] = false;
                    false
                } else {
                    leader.conservative[s]
                }
            }
        };
        if next != leader.conservative[s] {
            push_capped(
                &mut leader.mode_events,
                ModeEvent {
                    window: leader.windows,
                    shard: s as u32,
                    conservative: next,
                },
                &mut leader.traces_truncated,
            );
            #[cfg(feature = "fault-inject")]
            if crate::fault::armed(crate::fault::Fault::HybridSwitchDrop) {
                // Armable bug: the mode switch drops the shard's carried
                // in-flight fragments.
                for i in shared.ranges[s].clone() {
                    leader.carried[i].clear();
                }
            }
            leader.conservative[s] = next;
        }
        leader.snaps_in[s] = 0;
        leader.reexecs[s] = 0;
        leader.frozen[s] = false;
    }
    leader.windows += 1;
    leader.window_reexec_nodes = 0;
    leader.repeat_rounds = 0;
    let all_done = leader.done.iter().all(|&d| d);
    if all_done {
        shared.control.store(CTRL_STOP, Ordering::Relaxed);
        return;
    }
    if leader.windows > leader.max_quanta {
        // Cannot panic while peers wait on the barrier — flag and stop.
        shared.overflow.store(true, Ordering::Relaxed);
        shared.control.store(CTRL_STOP, Ordering::Relaxed);
        return;
    }
    // Open the next window: advance the policy on the routed-packet signal
    // (the same np the conservative engines feed it) and hand every node
    // its round-0 inbound set — the carried fragments landing inside.
    let next_len = leader.policy.next_quantum(routed);
    leader.q_start_nanos = leader.q_end_nanos;
    leader.q_end_nanos = leader.q_start_nanos + next_len.as_nanos();
    let next_edge = leader.q_end_nanos;
    for i in 0..leader.n {
        let carried = std::mem::take(&mut leader.carried[i]);
        let (mut inside, rest): (Vec<Inbound>, Vec<Inbound>) = carried
            .into_iter()
            .partition(|e| e.arrival.as_nanos() < next_edge);
        inside.sort();
        leader.carried[i] = rest;
        leader.base[i] = inside.clone();
        leader.used[i] = inside;
        leader.scheduled[i] = true;
    }
    let mut ckpt_total = 0u64;
    for (s, range) in shared.ranges.iter().enumerate() {
        let mut cell = shared.cells[s].lock().expect("shard cell poisoned");
        cell.conservative = leader.conservative[s];
        if !leader.conservative[s] {
            let size = range.len() as u64;
            leader.shard_ckpt[s] = size;
            ckpt_total += size;
        }
        for (l, g) in range.clone().enumerate() {
            cell.run[l] = true;
            cell.inbound[l] = leader.used[g].clone();
        }
    }
    leader.checkpoints += ckpt_total;
    if R::ENABLED && ckpt_total > 0 {
        leader.rec.record_checkpoints(ckpt_total);
    }
    shared.control.store(leader.q_end_nanos, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::sim::{EngineKind, Sim, SimSwitch};
    use aqs_core::SyncConfig;
    use aqs_net::LatencyMatrixSwitch;
    use aqs_node::{ProgramBuilder, Rank, Tag};
    use aqs_obs::ObsConfig;
    use aqs_workloads::{burst, ping_pong};

    fn ground_truth_report(programs: Vec<Program>) -> crate::sim::RunReport {
        Sim::new(programs)
            .config(ClusterConfig::new(SyncConfig::ground_truth()).with_seed(1))
            .run()
    }

    #[test]
    fn safe_quantum_matches_deterministic_for_every_worker_count_and_kind() {
        let spec = burst(5, 2_000, 1024);
        let det = ground_truth_report(spec.programs.clone());
        for m in 1..=5 {
            for kind in [EngineKind::ShardedOptimistic, EngineKind::Hybrid] {
                let r = Sim::new(spec.programs.clone())
                    .engine(kind)
                    .sync(SyncConfig::ground_truth())
                    .shards(m)
                    .run();
                assert_eq!(
                    r.simulated_outcome(),
                    det.simulated_outcome(),
                    "workers={m} kind={kind:?}"
                );
                let d = r.detail.as_sharded_optimistic().expect("opt detail");
                assert_eq!(d.rollbacks, 0, "Q ≤ T must be rollback-free");
                assert_eq!(d.degraded_windows, 0);
                // Every window checkpoints every node (all shards stay
                // optimistic when nothing ever rolls back).
                assert_eq!(d.checkpoints, 5 * d.windows, "workers={m}");
                assert_eq!(d.hybrid, kind == EngineKind::Hybrid);
            }
        }
    }

    #[test]
    fn undegraded_run_reproduces_ground_truth_exactly_under_unsafe_quantum() {
        // With a generous cascade bound the fixed point always converges
        // without freezing a shard — and a run that never degraded and never
        // snapped a packet must land on the ground-truth timeline exactly,
        // rollbacks and all.
        let spec = ping_pong(4, 25, 4096);
        let det = ground_truth_report(spec.programs.clone());
        let r = Sim::new(spec.programs.clone())
            .engine(EngineKind::ShardedOptimistic)
            .sync(SyncConfig::fixed_micros(50))
            .cascade_bound(512)
            .shards(4)
            .run();
        let d = r.detail.as_sharded_optimistic().expect("opt detail");
        assert!(d.rollbacks > 0, "the unsafe quantum must force rollbacks");
        assert_eq!(d.degraded_windows, 0, "bound 512 must never freeze");
        assert_eq!(r.stragglers.count(), 0, "no shard ever snapped");
        assert_eq!(r.simulated_outcome(), det.simulated_outcome());
    }

    #[test]
    fn cascade_bound_degrades_the_shard_instead_of_unwinding_neighbors() {
        let spec = ping_pong(4, 25, 4096);
        let r = Sim::new(spec.programs.clone())
            .engine(EngineKind::ShardedOptimistic)
            .sync(SyncConfig::fixed_micros(1000))
            .shards(4)
            .run();
        let d = r.detail.as_sharded_optimistic().expect("opt detail");
        assert!(d.degraded_windows > 0, "deep chains must hit the bound");
        assert!(d.max_rollback_depth <= d.cascade_bound);
        assert_eq!(d.cascade_bound, 8);
        assert!(
            d.conservative_windows > 0,
            "a bound hit forces a conservative window"
        );
        assert!(r.stragglers.count() > 0, "degraded windows snap packets");
        // Conservation: nothing is lost across freeze/degrade transitions
        // (ping_pong only engages ranks 0 and 1, 25 rounds each way).
        assert_eq!(d.messages_received_total(), 50);
        // wasted_sim is exactly the re-executed quanta in the traces.
        assert!(!d.traces_truncated);
        let replayed: u64 = d
            .window_len_trace
            .iter()
            .zip(&d.reexec_trace)
            .map(|(&len, &k)| len * u64::from(k))
            .sum();
        assert_eq!(d.wasted_sim.as_nanos(), replayed);
        assert_eq!(u64::from(d.reexec_trace.iter().sum::<u32>()), d.rollbacks);
    }

    #[test]
    fn hybrid_policy_switches_modes_and_replays_bit_identically() {
        let spec = ping_pong(4, 25, 4096);
        let run = || {
            Sim::new(spec.programs.clone())
                .engine(EngineKind::Hybrid)
                .sync(SyncConfig::fixed_micros(1000))
                .hybrid_policy(HybridPolicy {
                    degrade_after: 1,
                    recover_after: 2,
                })
                .shards(4)
                .run()
        };
        let a = run();
        let da = a.detail.as_sharded_optimistic().expect("opt detail");
        assert!(da.hybrid);
        assert!(
            !da.mode_events.is_empty(),
            "stragglers must force mode switches"
        );
        assert!(da.mode_events.iter().any(|e| e.conservative));
        assert_eq!(da.messages_received_total(), 50);
        // The whole adaptive trajectory is deterministic: a second run lands
        // on the same outcome, the same switches, the same GVT trace.
        let b = run();
        let db = b.detail.as_sharded_optimistic().expect("opt detail");
        assert_eq!(a.simulated_outcome(), b.simulated_outcome());
        assert_eq!(da.mode_events, db.mode_events);
        assert_eq!(da.gvt_trace, db.gvt_trace);
        assert_eq!(da.conservative_windows, db.conservative_windows);
    }

    #[test]
    fn gvt_trace_is_monotone_and_covers_the_run() {
        let spec = ping_pong(4, 25, 4096);
        let r = Sim::new(spec.programs.clone())
            .engine(EngineKind::ShardedOptimistic)
            .sync(SyncConfig::fixed_micros(1000))
            .shards(2)
            .run();
        let d = r.detail.as_sharded_optimistic().expect("opt detail");
        assert_eq!(d.gvt_trace.len() as u64, d.windows);
        for w in d.gvt_trace.windows(2) {
            assert!(w[0] <= w[1], "GVT must never retreat");
        }
        assert!(*d.gvt_trace.last().expect("nonempty") >= d.sim_end.as_nanos());
    }

    #[test]
    fn flight_recorder_counters_match_the_result_and_never_perturb_it() {
        let spec = ping_pong(4, 25, 4096);
        let run = |record: bool| {
            let mut sim = Sim::new(spec.programs.clone())
                .engine(EngineKind::ShardedOptimistic)
                .sync(SyncConfig::fixed_micros(1000))
                .shards(4);
            if record {
                sim = sim.record(ObsConfig::new());
            }
            sim.run()
        };
        let plain = run(false);
        let rec = run(true);
        assert_eq!(plain.simulated_outcome(), rec.simulated_outcome());
        let d = rec.detail.as_sharded_optimistic().expect("opt detail");
        let fr = rec.obs.as_ref().expect("recording was enabled");
        assert_eq!(fr.rollbacks(), d.rollbacks);
        assert_eq!(fr.checkpoints(), d.checkpoints);
        assert_eq!(fr.wasted_sim(), d.wasted_sim);
        assert_eq!(fr.total_packets(), d.total_packets);
        let shard = fr.shard_rollback_stats().expect("sharded optimistic run");
        assert_eq!(shard.rollbacks.iter().sum::<u64>(), d.rollbacks);
        assert_eq!(shard.checkpoints.iter().sum::<u64>(), d.checkpoints);
        assert_eq!(shard.wasted_ns.iter().sum::<u64>(), d.wasted_sim.as_nanos());
    }

    #[test]
    fn latency_matrix_switch_matches_deterministic_engine() {
        let spec = ping_pong(2, 20, 4096);
        let matrix = LatencyMatrixSwitch::uniform(2, SimDuration::from_micros(3));
        let det = Sim::new(spec.programs.clone())
            .config(ClusterConfig::new(SyncConfig::ground_truth()).with_seed(7))
            .switch(SimSwitch::LatencyMatrix(matrix.clone()))
            .run();
        let r = Sim::new(spec.programs)
            .engine(EngineKind::Hybrid)
            .sync(SyncConfig::ground_truth())
            .switch(SimSwitch::LatencyMatrix(matrix))
            .shards(2)
            .run();
        assert_eq!(r.simulated_outcome(), det.simulated_outcome());
    }

    #[test]
    #[should_panic(expected = "quantum cap exceeded")]
    fn a_deadlocked_workload_hits_the_quantum_cap() {
        // Rank 0 waits for a message rank 1 never sends.
        let starved = ProgramBuilder::new(Rank::new(0))
            .recv(Some(Rank::new(1)), Tag::new(0))
            .build();
        let silent = ProgramBuilder::new(Rank::new(1)).compute(10).build();
        let _ = Sim::new(vec![starved, silent])
            .engine(EngineKind::ShardedOptimistic)
            .sync(SyncConfig::ground_truth())
            .max_quanta(50)
            .shards(2)
            .run();
    }
}
