//! Deliberate, runtime-armable engine bugs (`fault-inject` feature).
//!
//! Realistic bugs a refactor of either engine could introduce; the
//! `aqs-check` mutation smoke test arms each one and proves its differential
//! and invariant oracles catch it. Compiled in only under the `fault-inject`
//! feature and inert until armed.
//!
//! Arming is process-global: test binaries that arm faults must serialize
//! the armed window (a shared mutex, or `--test-threads=1`).

use std::sync::atomic::{AtomicU64, Ordering};

/// A deliberate bug in one of the cluster engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The deterministic engine still snaps straggler packets to the
    /// quantum boundary (§3) but forgets to *account* for them — the stats
    /// claim zero stragglers while the timeline is dilated. Detected by the
    /// stragglers-vs-dilation invariant: a run that reports zero stragglers
    /// must reproduce the ground-truth `sim_end` exactly.
    DetStragglerSkip = 1,
    /// The threaded engine's leader forgets node 0's packet count when
    /// summing `np` for the adaptive policy (the recorded trace still holds
    /// the true sum). Detected by the shrink-on-packet direction invariant
    /// on the recorded quanta.
    LeaderNpSkip = 2,
    /// The sharded optimistic engine restores a rollback from the
    /// second-newest checkpoint ring entry instead of the newest — node
    /// state jumps back one extra window, replaying (and double-counting)
    /// work that was already committed. Detected by the ground-truth
    /// differential and conservation oracles.
    StaleCheckpointRestore = 3,
    /// The sharded optimistic leader computes GVT from shard 0's LVT alone
    /// instead of reducing the minimum across shards — windows commit while
    /// another shard still holds a violation. Detected by the
    /// rollback-property oracles (a degraded/clean run must reproduce the
    /// ground-truth timeline exactly) and the cross-engine differential.
    GvtFromOneShard = 4,
    /// A rollback re-delivers only the *delta* fragments instead of
    /// rebuilding the node's full inbound set — previously delivered
    /// messages vanish from the re-execution. Detected by conservation (the
    /// run loses receives) or the quantum cap (receivers deadlock waiting).
    RollbackMailboxSkip = 5,
    /// The hybrid policy's conservative/optimistic mode switch drops the
    /// shard's carried in-flight fragments at the transition. Detected by
    /// conservation or the quantum cap, exactly like a lossy mailbox.
    HybridSwitchDrop = 6,
    /// The snapshot writer truncates the frame mid-payload (a crash between
    /// `write` and `fsync`). Detected by the frame-length check in
    /// [`SimSnapshot::from_bytes`](crate::SimSnapshot::from_bytes), which
    /// reports a typed format error instead of resuming from garbage.
    SnapshotTruncate = 7,
    /// A payload byte is flipped after the checksum was computed (bit rot,
    /// torn write). Detected by the FNV-1a checksum verification.
    SnapshotChecksumFlip = 8,
    /// The snapshot carries a stale spec fingerprint — the frame is
    /// internally consistent but describes a different simulation epoch.
    /// Detected by the fingerprint comparison in
    /// [`Sim::resume`](crate::Sim::resume).
    SnapshotStaleFingerprint = 9,
    /// A node's RNG stream is silently advanced one draw between capture
    /// and serialization (a skipped stream). The state words stay
    /// plausible; only the per-node probe word can tell. Detected by the
    /// probe check in `from_bytes`.
    SnapshotRngSkip = 10,
    /// The sharded engine's wake-wheel forgets to re-arm a sleeping node
    /// when an inbox delivery lands *beyond* the current quantum edge — the
    /// fragment sits in the node's pending set but the node is never
    /// scheduled again unless something else wakes it. Nodes blocked in a
    /// `Recv` stay parked forever. Detected by conservation (receives are
    /// lost) or the quantum cap (the cluster deadlocks), and invisible
    /// under `force_full_sweep`, which is exactly what makes it a
    /// realistic active-set regression.
    WakeRearmSkip = 11,
}

static ARMED: AtomicU64 = AtomicU64::new(0);

/// Arms `fault` (replacing any previously armed one).
pub fn arm(fault: Fault) {
    ARMED.store(fault as u64, Ordering::Release);
}

/// Disarms every fault in this crate.
pub fn disarm_all() {
    ARMED.store(0, Ordering::Release);
}

/// True when `fault` is the currently armed fault.
pub fn armed(fault: Fault) -> bool {
    ARMED.load(Ordering::Acquire) == fault as u64
}
