//! Deliberate, runtime-armable engine bugs (`fault-inject` feature).
//!
//! Realistic bugs a refactor of either engine could introduce; the
//! `aqs-check` mutation smoke test arms each one and proves its differential
//! and invariant oracles catch it. Compiled in only under the `fault-inject`
//! feature and inert until armed.
//!
//! Arming is process-global: test binaries that arm faults must serialize
//! the armed window (a shared mutex, or `--test-threads=1`).

use std::sync::atomic::{AtomicU64, Ordering};

/// A deliberate bug in one of the cluster engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The deterministic engine still snaps straggler packets to the
    /// quantum boundary (§3) but forgets to *account* for them — the stats
    /// claim zero stragglers while the timeline is dilated. Detected by the
    /// stragglers-vs-dilation invariant: a run that reports zero stragglers
    /// must reproduce the ground-truth `sim_end` exactly.
    DetStragglerSkip = 1,
    /// The threaded engine's leader forgets node 0's packet count when
    /// summing `np` for the adaptive policy (the recorded trace still holds
    /// the true sum). Detected by the shrink-on-packet direction invariant
    /// on the recorded quanta.
    LeaderNpSkip = 2,
}

static ARMED: AtomicU64 = AtomicU64::new(0);

/// Arms `fault` (replacing any previously armed one).
pub fn arm(fault: Fault) {
    ARMED.store(fault as u64, Ordering::Release);
}

/// Disarms every fault in this crate.
pub fn disarm_all() {
    ARMED.store(0, Ordering::Release);
}

/// True when `fault` is the currently armed fault.
pub fn armed(fault: Fault) -> bool {
    ARMED.load(Ordering::Acquire) == fault as u64
}
