//! Run results.

use aqs_core::QuantumTrace;
use aqs_net::{StragglerStats, TrafficTrace};
use aqs_node::{Rank, RegionId, RegionRecord};
use aqs_time::{HostDuration, HostTime, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Per-node outcome of a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeResult {
    /// The rank this node ran.
    pub rank: Rank,
    /// Simulated time at which its program completed.
    pub finish_sim: SimTime,
    /// Host time at which its program completed.
    pub finish_host: HostTime,
    /// Abstract operations it retired.
    pub ops: u64,
    /// Messages it fully received.
    pub messages_received: u64,
    /// Closed timed-region instances.
    #[serde(skip)]
    pub regions: Vec<RegionRecord>,
}

impl NodeResult {
    /// Total duration of all instances of `region` on this node.
    pub fn region_duration(&self, region: RegionId) -> SimDuration {
        self.regions
            .iter()
            .filter(|r| r.region == region)
            .map(RegionRecord::duration)
            .sum()
    }
}

/// The complete outcome of one cluster simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Label of the synchronization policy that produced this run.
    pub sync_label: String,
    /// Number of nodes.
    pub n_nodes: usize,
    /// Simulated completion time (max across nodes).
    pub sim_end: SimTime,
    /// Host wall-clock the whole simulation took (to the last node's
    /// program completion).
    pub host_elapsed: HostDuration,
    /// Per-node details, indexed by rank.
    pub per_node: Vec<NodeResult>,
    /// Straggler statistics for the run.
    pub stragglers: StragglerStats,
    /// Total packets routed by the controller.
    pub total_packets: u64,
    /// Number of quanta executed.
    pub total_quanta: u64,
    /// Quantum-by-quantum trace (records only when enabled).
    pub quanta: QuantumTrace,
    /// Packet trace (records only when enabled).
    pub traffic: TrafficTrace,
    /// (host, sim) progress checkpoints (empty unless enabled).
    pub progress: Vec<(HostTime, SimTime)>,
}

impl RunResult {
    /// Total operations retired across all nodes.
    pub fn total_ops(&self) -> u64 {
        self.per_node.iter().map(|n| n.ops).sum()
    }

    /// Wall-clock span of `region` across the cluster: from the earliest
    /// start to the latest end over all nodes and instances. `None` if no
    /// node closed the region.
    ///
    /// This is what a benchmark's own timer reports: rank 0 starts the
    /// clock when it enters the kernel and stops it when the last result is
    /// in.
    pub fn region_span(&self, region: RegionId) -> Option<SimDuration> {
        let mut start: Option<SimTime> = None;
        let mut end: Option<SimTime> = None;
        for node in &self.per_node {
            for r in node.regions.iter().filter(|r| r.region == region) {
                start = Some(start.map_or(r.start, |s| s.min(r.start)));
                end = Some(end.map_or(r.end, |e| e.max(r.end)));
            }
        }
        Some(end? - start?)
    }

    /// Host-time speedup of this run relative to `baseline` (the paper's
    /// "acceleration vs. 1 µs").
    ///
    /// Degenerate runs never divide by zero: a zero-time baseline yields
    /// 0.0, and a zero-time run against a non-zero baseline yields
    /// [`f64::INFINITY`].
    pub fn speedup_vs(&self, baseline: &RunResult) -> f64 {
        if baseline.host_elapsed == HostDuration::ZERO {
            return 0.0;
        }
        if self.host_elapsed == HostDuration::ZERO {
            return f64::INFINITY;
        }
        baseline.host_elapsed.ratio(self.host_elapsed)
    }

    /// Ratio of simulated completion times vs. `baseline` (the paper's
    /// "simulated execution ratio" for IS).
    pub fn sim_ratio_vs(&self, baseline: &RunResult) -> f64 {
        (self.sim_end.as_nanos() as f64) / (baseline.sim_end.as_nanos() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqs_net::StragglerStats;

    fn node(rank: u32, regions: Vec<RegionRecord>) -> NodeResult {
        NodeResult {
            rank: Rank::new(rank),
            finish_sim: SimTime::from_micros(100),
            finish_host: HostTime::from_micros(100),
            ops: 1000,
            messages_received: 2,
            regions,
        }
    }

    fn run(per_node: Vec<NodeResult>, host_us: u64, sim_us: u64) -> RunResult {
        RunResult {
            sync_label: "test".into(),
            n_nodes: per_node.len(),
            sim_end: SimTime::from_micros(sim_us),
            host_elapsed: HostDuration::from_micros(host_us),
            per_node,
            stragglers: StragglerStats::default(),
            total_packets: 0,
            total_quanta: 1,
            quanta: QuantumTrace::disabled(),
            traffic: TrafficTrace::disabled(),
            progress: Vec::new(),
        }
    }

    #[test]
    fn region_span_across_nodes() {
        let r0 = RegionRecord {
            region: RegionId::KERNEL,
            start: SimTime::from_micros(10),
            end: SimTime::from_micros(50),
        };
        let r1 = RegionRecord {
            region: RegionId::KERNEL,
            start: SimTime::from_micros(20),
            end: SimTime::from_micros(80),
        };
        let result = run(vec![node(0, vec![r0]), node(1, vec![r1])], 100, 100);
        assert_eq!(
            result.region_span(RegionId::KERNEL),
            Some(SimDuration::from_micros(70))
        );
        assert_eq!(result.region_span(RegionId::new(9)), None);
    }

    #[test]
    fn speedup_and_sim_ratio() {
        let base = run(vec![node(0, vec![])], 2600, 100);
        let fast = run(vec![node(0, vec![])], 100, 150);
        assert!((fast.speedup_vs(&base) - 26.0).abs() < 1e-12);
        assert!((fast.sim_ratio_vs(&base) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_guards_zero_denominators() {
        let zero = run(vec![node(0, vec![])], 0, 100);
        let some = run(vec![node(0, vec![])], 100, 100);
        assert_eq!(some.speedup_vs(&zero), 0.0, "zero baseline must not panic");
        assert_eq!(zero.speedup_vs(&some), f64::INFINITY);
        assert_eq!(zero.speedup_vs(&zero), 0.0);
    }

    #[test]
    fn total_ops_sums_nodes() {
        let result = run(vec![node(0, vec![]), node(1, vec![])], 1, 1);
        assert_eq!(result.total_ops(), 2000);
    }
}
