//! The deterministic meta-engine.
//!
//! This is a discrete-event simulation of the *parallel simulation*: the
//! outer clock is modelled **host time**, on which three kinds of events
//! live:
//!
//! * `NodeYield` — a node simulator finishes its current execution segment
//!   (a slice of compute/idle guest time, capped at the quantum boundary);
//! * `FragAtController` — a link-layer fragment reaches the central network
//!   controller (one socket hop after leaving the sending simulator);
//! * `BarrierDone` — the last node reached the quantum boundary and the
//!   barrier's host cost has elapsed; the quantum policy chooses the next
//!   quantum and all nodes resume.
//!
//! Simulated time is derived: each node's position advances linearly within
//! its active segment at its current (jittered) simulation speed. Straggler
//! handling is the paper's §3 verbatim: when a fragment's computed arrival
//! time is behind the receiver's current simulated position, it is
//! delivered *now* and the delay is recorded; when the receiver has already
//! finished its quantum, delivery snaps to the next quantum start
//! (Figure 3(d)).

use crate::config::ClusterConfig;
use crate::progress::ProgressRecorder;
use crate::result::{NodeResult, RunResult};
use crate::sim::SimError;
use crate::snapshot::{FragSnap, InFlightSnap, NodeSnap, SnapshotBody, StragglerSnap};
use aqs_core::{QuantumPolicy, QuantumTrace};
use aqs_des::EventQueue;
use aqs_net::{Destination, NetworkController, NodeId, StragglerStats, SwitchModel};
use aqs_node::{Action, HostSpeed, MessageId, MessageMeta, NodeExecutor, Program, SendTarget};
use aqs_obs::{QuantumObs, Recorder};
use aqs_rng::Rng;
use aqs_time::{HostTime, SimDuration, SimTime};
use std::collections::VecDeque;

/// Payload attached to every routed fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FragInfo {
    meta: MessageMeta,
    frag_index: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SegKind {
    /// Executing (part of) a program op: compute, idle, send serialization,
    /// or receive overhead. Must run to completion.
    Op,
    /// Traversing idle time while blocked on a receive; interruptible by a
    /// message completion.
    BlockedIdle,
}

#[derive(Clone, Copy, Debug)]
struct Segment {
    kind: SegKind,
    start_sim: SimTime,
    start_host: HostTime,
    end_sim: SimTime,
    end_host: HostTime,
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    remaining: SimDuration,
    idle: bool,
}

#[derive(Clone, Debug)]
struct OutFrag {
    departure: SimTime,
    dst: Destination,
    bytes: u32,
    meta: MessageMeta,
    frag_index: u32,
}

struct Node {
    exec: NodeExecutor,
    speed: HostSpeed,
    /// Anchored simulated position (valid when no segment is active).
    sim: SimTime,
    /// Anchored host position.
    host: HostTime,
    seg: Option<Segment>,
    pending: Option<Pending>,
    at_barrier: bool,
    /// Last poll returned `Blocked` with no candidate message.
    blocked_no_candidate: bool,
    /// Generation counter: a scheduled `NodeYield` is valid only if its
    /// generation matches (interrupts bump the generation).
    gen: u64,
    outgoing: VecDeque<OutFrag>,
    msg_seq: u64,
    done: bool,
    finish_host: Option<HostTime>,
    /// Simulated position where the node last began idling straight to the
    /// quantum boundary (`None` while it still has work before the edge).
    /// The observability sample's per-node virtual-time lag is
    /// `q_end - idle_from`.
    idle_from: Option<SimTime>,
}

#[derive(Debug)]
enum Ev {
    NodeYield { node: usize, gen: u64 },
    FragAtController(Box<OutFrag>, NodeId),
    BarrierDone,
}

struct Engine<'a, S, R> {
    cfg: &'a ClusterConfig,
    nodes: Vec<Node>,
    net: NetworkController<FragInfo, S>,
    queue: EventQueue<HostTime, Ev>,
    policy: Box<dyn QuantumPolicy>,
    q_len: SimDuration,
    q_start: SimTime,
    q_end: SimTime,
    barrier_arrived: usize,
    barrier_latest: HostTime,
    quanta: QuantumTrace,
    progress: ProgressRecorder,
    in_flight_frags: usize,
    n_finished: usize,
    finished: bool,
    final_host: HostTime,
    rec: R,
    /// Index of the next observability sample (counts recorded quanta).
    q_index: u64,
    /// Stragglers seen during the current quantum (whole-run totals live in
    /// the network controller).
    q_stragglers: StragglerStats,
    /// Scratch lanes for sample assembly, reused across quanta.
    scratch_waits: Vec<u64>,
    scratch_lags: Vec<u64>,
    /// This engine was seeded from a snapshot (skip the initial resample —
    /// the restored RNG streams already sit past their barrier draw).
    resumed: bool,
    /// Capture a snapshot after this many completed quanta, if set.
    capture_at: Option<u64>,
    /// The captured state, once the capture point is reached.
    captured: Option<SnapshotBody>,
}

/// How a deterministic-engine run ended: it either ran to completion or
/// stopped at a requested quantum edge with a captured snapshot body.
pub(crate) enum DetOutcome<R> {
    /// The run completed.
    Finished(Box<RunResult>, R),
    /// The run stopped at the capture point.
    Captured(Box<SnapshotBody>),
}

/// Engine entry point with an explicit [`Recorder`]: the unified `Sim`
/// builder dispatches here. This is the deterministic engine's only entry —
/// the historical `run_cluster`/`run_cluster_with_switch` free functions
/// were deleted after five PRs of deprecation.
pub(crate) fn run_cluster_impl<S: SwitchModel, R: Recorder>(
    programs: Vec<Program>,
    config: &ClusterConfig,
    switch: S,
    recorder: R,
) -> Result<(RunResult, R), SimError> {
    match run_cluster_det(programs, config, switch, recorder, None, None)? {
        DetOutcome::Finished(r, rec) => Ok((*r, rec)),
        DetOutcome::Captured(_) => unreachable!("no capture was requested"),
    }
}

/// The full deterministic entry: optionally seed the engine from a snapshot
/// body, optionally stop-and-capture after `capture_at` completed quanta.
pub(crate) fn run_cluster_det<S: SwitchModel, R: Recorder>(
    programs: Vec<Program>,
    config: &ClusterConfig,
    switch: S,
    recorder: R,
    resume: Option<&SnapshotBody>,
    capture_at: Option<u64>,
) -> Result<DetOutcome<R>, SimError> {
    assert!(programs.len() >= 2, "a cluster needs at least 2 nodes");
    for (i, p) in programs.iter().enumerate() {
        assert_eq!(p.rank().index(), i, "program {i} is for {}", p.rank());
    }
    let mut engine = match resume {
        None => Engine::new(programs, config, switch, recorder),
        Some(body) => Engine::resumed(programs, config, switch, recorder, body)?,
    };
    engine.capture_at = capture_at;
    engine.run()
}

fn frag_to_snap(f: &OutFrag) -> FragSnap {
    FragSnap {
        departure: f.departure,
        dst: match f.dst {
            Destination::Unicast(id) => Some(id.index() as u32),
            Destination::Broadcast => None,
        },
        bytes: f.bytes,
        meta: f.meta,
        frag_index: f.frag_index,
    }
}

fn frag_from_snap(f: &FragSnap) -> OutFrag {
    OutFrag {
        departure: f.departure,
        dst: match f.dst {
            Some(r) => Destination::Unicast(NodeId::new(r)),
            None => Destination::Broadcast,
        },
        bytes: f.bytes,
        meta: f.meta,
        frag_index: f.frag_index,
    }
}

impl<'a, S: SwitchModel, R: Recorder> Engine<'a, S, R> {
    fn new(programs: Vec<Program>, cfg: &'a ClusterConfig, switch: S, rec: R) -> Self {
        let n = programs.len();
        let net = NetworkController::new(n, cfg.nic, switch).with_trace(cfg.record_traffic);
        let nodes = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Node {
                exec: NodeExecutor::new(p, cfg.cpu),
                speed: HostSpeed::new(cfg.host_for(i), Rng::substream(cfg.seed, i as u64)),
                sim: SimTime::ZERO,
                host: HostTime::ZERO,
                seg: None,
                pending: None,
                at_barrier: false,
                blocked_no_candidate: false,
                gen: 0,
                outgoing: VecDeque::new(),
                msg_seq: 0,
                done: false,
                finish_host: None,
                idle_from: None,
            })
            .collect();
        let policy = cfg.sync.build();
        let q_len = policy.initial_quantum();
        Self {
            cfg,
            nodes,
            net,
            queue: EventQueue::new(),
            policy,
            q_len,
            q_start: SimTime::ZERO,
            q_end: SimTime::ZERO + q_len,
            barrier_arrived: 0,
            barrier_latest: HostTime::ZERO,
            quanta: if cfg.record_quanta {
                QuantumTrace::enabled()
            } else {
                QuantumTrace::disabled()
            },
            progress: if cfg.record_progress {
                ProgressRecorder::new(4096)
            } else {
                ProgressRecorder::disabled()
            },
            in_flight_frags: 0,
            n_finished: 0,
            finished: false,
            final_host: HostTime::ZERO,
            rec,
            q_index: 0,
            q_stragglers: StragglerStats::default(),
            scratch_waits: Vec::with_capacity(n),
            scratch_lags: Vec::with_capacity(n),
            resumed: false,
            capture_at: None,
            captured: None,
        }
    }

    /// Rebuilds an engine from a snapshot body: every node sits anchored at
    /// the captured cut (`sim == q_start`, `host == now`), in-flight
    /// fragments are re-scheduled at their captured controller-arrival
    /// times, and all whole-run counters continue from their captured
    /// values. Running the result is bit-identical to never having stopped.
    fn resumed(
        programs: Vec<Program>,
        cfg: &'a ClusterConfig,
        switch: S,
        rec: R,
        body: &SnapshotBody,
    ) -> Result<Self, SimError> {
        let n = programs.len();
        if body.nodes.len() != n {
            return Err(SimError::snapshot_format(format!(
                "snapshot has {} nodes, simulation has {n}",
                body.nodes.len()
            )));
        }
        let mut net = NetworkController::new(n, cfg.nic, switch).with_trace(cfg.record_traffic);
        net.restore_counters(
            body.next_packet_id,
            body.total_packets,
            body.stragglers.restore()?,
        );
        let mut policy = cfg.sync.build();
        policy
            .load_state(&body.policy_state)
            .map_err(SimError::snapshot_format)?;
        let mut n_finished = 0;
        let mut nodes = Vec::with_capacity(n);
        for (i, (p, ns)) in programs.into_iter().zip(&body.nodes).enumerate() {
            let exec = NodeExecutor::from_state(p, cfg.cpu, ns.exec.clone())
                .map_err(|e| SimError::snapshot_format(format!("node {i}: {e}")))?;
            let speed = HostSpeed::from_state(cfg.host_for(i), ns.speed)
                .ok_or_else(|| SimError::snapshot_format(format!("node {i}: invalid RNG state")))?;
            if ns.done {
                n_finished += 1;
            }
            nodes.push(Node {
                exec,
                speed,
                sim: body.q_start,
                host: body.now_host,
                seg: None,
                pending: ns
                    .pending
                    .map(|(remaining, idle)| Pending { remaining, idle }),
                at_barrier: false,
                blocked_no_candidate: ns.blocked_no_candidate,
                gen: 0,
                outgoing: ns.outgoing.iter().map(frag_from_snap).collect(),
                msg_seq: ns.msg_seq,
                done: ns.done,
                finish_host: ns.finish_host,
                idle_from: None,
            });
        }
        let mut engine = Self {
            cfg,
            nodes,
            net,
            queue: EventQueue::new(),
            policy,
            q_len: body.q_len,
            q_start: body.q_start,
            q_end: body.q_start + body.q_len,
            barrier_arrived: 0,
            barrier_latest: HostTime::ZERO,
            quanta: QuantumTrace::resumed(cfg.record_quanta, body.quanta, body.quanta_total_length),
            progress: if cfg.record_progress {
                ProgressRecorder::new(4096)
            } else {
                ProgressRecorder::disabled()
            },
            in_flight_frags: 0,
            n_finished,
            finished: false,
            final_host: HostTime::ZERO,
            rec,
            q_index: body.q_index,
            q_stragglers: StragglerStats::default(),
            scratch_waits: Vec::with_capacity(n),
            scratch_lags: Vec::with_capacity(n),
            resumed: true,
            capture_at: None,
            captured: None,
        };
        // Re-schedule in-flight fragments FIRST (before any segment events):
        // they were scheduled before the cut in the uninterrupted run, so
        // re-creating them first reproduces the FIFO tie-break order.
        for f in &body.in_flight {
            if f.src as usize >= n {
                return Err(SimError::snapshot_format(format!(
                    "in-flight fragment from node {} of {n}",
                    f.src
                )));
            }
            engine.in_flight_frags += 1;
            engine.queue.schedule(
                f.due_host,
                Ev::FragAtController(Box::new(frag_from_snap(&f.frag)), NodeId::new(f.src)),
            );
        }
        Ok(engine)
    }

    fn run(mut self) -> Result<DetOutcome<R>, SimError> {
        if !self.resumed {
            for node in &mut self.nodes {
                node.speed.resample();
            }
        }
        for i in 0..self.nodes.len() {
            if self.finished {
                break;
            }
            self.advance_node(i);
        }
        while !self.finished && self.captured.is_none() {
            let Some((time, ev)) = self.queue.pop() else {
                return Err(SimError::EngineInvariant {
                    detail: format!(
                        "event queue drained with {} of {} programs unfinished",
                        self.nodes.len() - self.n_finished,
                        self.nodes.len()
                    ),
                });
            };
            match ev {
                Ev::NodeYield { node, gen } => self.on_node_yield(node, gen, time),
                Ev::FragAtController(frag, src) => self.on_frag(*frag, src, time),
                Ev::BarrierDone => self.on_barrier_done(time)?,
            }
        }
        if let Some(body) = self.captured.take() {
            return Ok(DetOutcome::Captured(Box::new(body)));
        }
        let (result, rec) = self.into_result();
        Ok(DetOutcome::Finished(Box::new(result), rec))
    }

    /// Drives node `i` forward from its anchored position until a segment
    /// is scheduled, the node parks at the barrier, or the run completes.
    fn advance_node(&mut self, i: usize) {
        loop {
            if self.finished {
                return;
            }
            if self.nodes[i].sim >= self.q_end {
                debug_assert_eq!(self.nodes[i].sim, self.q_end, "node overshot quantum end");
                self.enter_barrier(i);
                return;
            }
            if let Some(p) = self.nodes[i].pending {
                let to_q = self.q_end - self.nodes[i].sim;
                self.schedule_segment(i, SegKind::Op, p.remaining.min(to_q), p.idle);
                return;
            }
            let now = self.nodes[i].sim;
            let action = self.nodes[i].exec.next_action(now);
            if !matches!(action, Action::Blocked) {
                self.nodes[i].blocked_no_candidate = false;
            }
            match action {
                Action::Advance { dur, ops: _, idle } => {
                    // Sampling (§7 future work): guest timing produced while
                    // fast-forwarding carries the model's estimation bias.
                    let dur = match (&self.cfg.sampling, idle) {
                        (Some(s), false) => dur.mul_f64(s.timing_bias_at(self.cfg.seed, i, now)),
                        _ => dur,
                    };
                    self.nodes[i].pending = Some(Pending {
                        remaining: dur,
                        idle,
                    });
                }
                Action::Send { dst, bytes, tag } => self.start_send(i, dst, bytes, tag),
                Action::WaitUntil(t) => {
                    debug_assert!(t > now, "executor must consume past-ready messages");
                    let target = t.min(self.q_end);
                    self.schedule_segment(i, SegKind::BlockedIdle, target - now, true);
                    return;
                }
                Action::Blocked => {
                    self.nodes[i].blocked_no_candidate = true;
                    self.schedule_segment(i, SegKind::BlockedIdle, self.q_end - now, true);
                    return;
                }
                Action::Finished => {
                    if !self.nodes[i].done {
                        self.nodes[i].done = true;
                        self.nodes[i].finish_host = Some(self.nodes[i].host);
                        self.n_finished += 1;
                        if self.n_finished == self.nodes.len() {
                            self.finished = true;
                            self.final_host = self.nodes[i].host;
                            return;
                        }
                    }
                    // The guest OS keeps (idly) running until everyone is
                    // done; fast-forward to the quantum boundary.
                    self.schedule_segment(i, SegKind::BlockedIdle, self.q_end - now, true);
                    return;
                }
            }
        }
    }

    /// Queues the fragments of one message and charges the sender's NIC
    /// serialization time as a pending (non-interruptible) advance.
    fn start_send(&mut self, i: usize, dst: SendTarget, bytes: u64, tag: aqs_node::Tag) {
        let dst = match dst {
            SendTarget::Rank(r) => Destination::Unicast(NodeId::new(r.as_u32())),
            SendTarget::All => Destination::Broadcast,
        };
        let nic = self.cfg.nic;
        let sizes = nic.fragment_sizes(bytes);
        let node = &mut self.nodes[i];
        let meta = MessageMeta {
            id: MessageId {
                src: node.exec.rank(),
                seq: node.msg_seq,
            },
            tag,
            bytes,
            frag_count: sizes.len() as u32,
        };
        node.msg_seq += 1;
        let mut t = node.sim;
        let mut total = SimDuration::ZERO;
        for (k, sz) in sizes.into_iter().enumerate() {
            let ser = nic.serialization_delay(sz);
            t += ser;
            total += ser;
            node.outgoing.push_back(OutFrag {
                departure: t,
                dst,
                bytes: sz,
                meta,
                frag_index: k as u32,
            });
        }
        node.pending = Some(Pending {
            remaining: total,
            idle: false,
        });
    }

    /// Schedules the next execution segment for node `i` (which must be
    /// anchored) and hands off any fragments departing within it.
    fn schedule_segment(&mut self, i: usize, kind: SegKind, len: SimDuration, idle: bool) {
        debug_assert!(!len.is_zero(), "zero-length segment scheduled");
        let hop = self.cfg.controller_hop;
        // Sampling divides the host cost of active guest execution while
        // the node simulator is fast-forwarding.
        let divisor = match (&self.cfg.sampling, idle) {
            (Some(s), false) => s.host_divisor_at(self.nodes[i].sim),
            _ => 1.0,
        };
        let q_end = self.q_end;
        let node = &mut self.nodes[i];
        let start_sim = node.sim;
        let start_host = node.host;
        let end_sim = start_sim + len;
        let end_host = start_host + node.speed.host_cost(len, idle).div_f64(divisor);
        // Virtual-time lag bookkeeping: an idle traversal that runs straight
        // to the quantum boundary starts (or restarts) the node's idle tail;
        // anything else means the node still has work before the edge.
        node.idle_from = if kind == SegKind::BlockedIdle && end_sim >= q_end {
            Some(start_sim)
        } else {
            None
        };
        node.gen += 1;
        let gen = node.gen;
        node.seg = Some(Segment {
            kind,
            start_sim,
            start_host,
            end_sim,
            end_host,
        });
        // Collect the departures first: queue and node are both fields of
        // self, so the handoff happens after the node borrow ends.
        let mut departures: Vec<(HostTime, OutFrag)> = Vec::new();
        while let Some(front) = node.outgoing.front() {
            if front.departure > end_sim {
                break;
            }
            let frag = node.outgoing.pop_front().expect("front vanished");
            let dep_host = start_host + node.speed.host_cost(frag.departure - start_sim, idle);
            departures.push((dep_host + hop, frag));
        }
        self.queue
            .schedule(end_host, Ev::NodeYield { node: i, gen });
        for (at, frag) in departures {
            self.in_flight_frags += 1;
            self.queue.schedule(
                at,
                Ev::FragAtController(Box::new(frag), NodeId::new(i as u32)),
            );
        }
    }

    fn on_node_yield(&mut self, i: usize, gen: u64, now: HostTime) {
        if self.nodes[i].gen != gen {
            return; // cancelled by an interrupt
        }
        let node = &mut self.nodes[i];
        let seg = node.seg.take().expect("yield without active segment");
        debug_assert_eq!(seg.end_host, now);
        let advanced = seg.end_sim - seg.start_sim;
        node.sim = seg.end_sim;
        node.host = now;
        if seg.kind == SegKind::Op {
            let p = node
                .pending
                .as_mut()
                .expect("op segment without pending work");
            p.remaining = p.remaining.saturating_sub(advanced);
            if p.remaining.is_zero() {
                node.pending = None;
            }
        }
        self.advance_node(i);
    }

    fn enter_barrier(&mut self, i: usize) {
        let node = &mut self.nodes[i];
        debug_assert!(!node.at_barrier, "node entered barrier twice");
        node.at_barrier = true;
        let node_host = node.host;
        self.barrier_arrived += 1;
        self.barrier_latest = self.barrier_latest.max(node_host);
        if self.barrier_arrived == self.nodes.len() {
            let cost = self.cfg.barrier.cost(self.nodes.len());
            self.queue
                .schedule(self.barrier_latest + cost, Ev::BarrierDone);
        }
    }

    fn on_barrier_done(&mut self, now: HostTime) -> Result<(), SimError> {
        let np = self.net.end_quantum();
        self.quanta.record(self.q_start, self.q_len, np);
        self.progress.record(now, self.q_end);
        if R::ENABLED {
            self.scratch_waits.clear();
            self.scratch_lags.clear();
            for node in &self.nodes {
                // `host` is still the node's barrier arrival time here; the
                // reset to `now` happens below.
                self.scratch_waits
                    .push((self.barrier_latest - node.host).as_nanos());
                self.scratch_lags.push(
                    node.idle_from
                        .map_or(0, |from| (self.q_end - from).as_nanos()),
                );
            }
            self.rec.record_quantum(&QuantumObs {
                index: self.q_index,
                start: self.q_start,
                len: self.q_len,
                packets: np,
                active_nodes: self.nodes.len() as u64,
                stragglers: self.q_stragglers.count(),
                max_straggler_delay: self.q_stragglers.max_delay(),
                barrier_wait_ns: &self.scratch_waits,
                vt_lag_ns: &self.scratch_lags,
            });
            self.q_index += 1;
            self.q_stragglers = StragglerStats::default();
        }
        self.check_deadlock(np)?;
        self.q_len = self.policy.next_quantum(np);
        self.q_start = self.q_end;
        self.q_end = self.q_start + self.q_len;
        self.barrier_arrived = 0;
        self.barrier_latest = HostTime::ZERO;
        for node in &mut self.nodes {
            debug_assert!(node.at_barrier, "barrier completed with a straggling node");
            node.at_barrier = false;
            node.host = now;
            node.idle_from = None;
            node.speed.resample();
        }
        // The cut point: every node sits exactly at the quantum edge
        // (`sim == q_start`), the policy has already chosen the next
        // quantum, and host speeds are freshly resampled. Capturing here
        // and never running the advance loop leaves the run resumable
        // with zero divergence.
        if self.capture_at == Some(self.quanta.total_quanta()) {
            self.captured = Some(self.capture(now));
            return Ok(());
        }
        for i in 0..self.nodes.len() {
            if self.finished {
                return Ok(());
            }
            self.advance_node(i);
        }
        Ok(())
    }

    /// Serializes the full engine state at the quantum-edge cut point.
    ///
    /// Must only be called from [`on_barrier_done`](Self::on_barrier_done)
    /// after the per-node reset loop: every node is anchored at
    /// `sim == q_start`, `host == now`, with no active segment, so none of
    /// that per-segment state needs to be stored. The event queue holds only
    /// in-flight fragments (and stale, generation-invalidated yields), which
    /// are drained in pop order so resume can re-schedule them with the
    /// same FIFO tie-breaks.
    fn capture(&mut self, now: HostTime) -> SnapshotBody {
        let mut in_flight = Vec::with_capacity(self.in_flight_frags);
        while let Some((time, ev)) = self.queue.pop() {
            if let Ev::FragAtController(frag, src) = ev {
                in_flight.push(InFlightSnap {
                    due_host: time,
                    src: src.index() as u32,
                    frag: frag_to_snap(&frag),
                });
            }
        }
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let speed = n.speed.export_state();
                // One draw from a *clone* of the captured stream. Restore
                // verifies this word before trusting the stream, catching
                // skipped or reordered draws that a checksum cannot see.
                let rng_probe = aqs_rng::Rng::from_state(speed.rng)
                    .expect("live RNG state is valid")
                    .next_u64();
                NodeSnap {
                    exec: n.exec.export_state(),
                    speed,
                    rng_probe,
                    msg_seq: n.msg_seq,
                    pending: n.pending.as_ref().map(|p| (p.remaining, p.idle)),
                    outgoing: n.outgoing.iter().map(frag_to_snap).collect(),
                    done: n.done,
                    finish_host: n.finish_host,
                    blocked_no_candidate: n.blocked_no_candidate,
                }
            })
            .collect();
        SnapshotBody {
            fingerprint: 0, // stamped by the caller in sim.rs
            quanta: self.quanta.total_quanta(),
            now_host: now,
            q_start: self.q_start,
            q_len: self.q_len,
            policy_state: self.policy.save_state(),
            quanta_total_length: self.quanta.total_length(),
            q_index: self.q_index,
            next_packet_id: self.net.next_packet_id(),
            total_packets: self.net.total_packets(),
            stragglers: StragglerSnap::capture(self.net.stragglers()),
            nodes,
            in_flight,
        }
    }

    /// A quantum with zero packets, zero in-flight fragments and every
    /// unfinished node blocked with no candidate message can never make
    /// progress: the workload deadlocked.
    fn check_deadlock(&self, np: u64) -> Result<(), SimError> {
        if np != 0 || self.in_flight_frags != 0 {
            return Ok(());
        }
        let stuck = self.nodes.iter().all(|n| {
            n.done || (n.blocked_no_candidate && n.pending.is_none() && n.outgoing.is_empty())
        });
        if stuck && self.n_finished < self.nodes.len() {
            let blocked: Vec<String> = self
                .nodes
                .iter()
                .filter(|n| !n.done)
                .map(|n| format!("{} at op {}", n.exec.rank(), n.exec.pc()))
                .collect();
            return Err(SimError::Deadlock {
                nodes: format!("{blocked:?}"),
            });
        }
        Ok(())
    }

    /// Receiver's simulated position at host time `h`.
    fn node_sim_pos(&self, j: usize, h: HostTime) -> SimTime {
        let node = &self.nodes[j];
        match &node.seg {
            Some(seg) => {
                if h >= seg.end_host {
                    seg.end_sim
                } else if h <= seg.start_host {
                    seg.start_sim
                } else {
                    let host_span = (seg.end_host - seg.start_host).as_nanos() as f64;
                    let frac = (h - seg.start_host).as_nanos() as f64 / host_span;
                    let sim_span = (seg.end_sim - seg.start_sim).as_nanos() as f64;
                    seg.start_sim + SimDuration::from_nanos((frac * sim_span) as u64)
                }
            }
            None => node.sim,
        }
    }

    fn on_frag(&mut self, frag: OutFrag, src: NodeId, now: HostTime) {
        self.in_flight_frags -= 1;
        let payload = FragInfo {
            meta: frag.meta,
            frag_index: frag.frag_index,
        };
        let deliveries = self
            .net
            .route(src, frag.dst, frag.bytes, frag.departure, payload);
        for d in deliveries {
            let j = d.packet.dst.index();
            let pos = self.node_sim_pos(j, now);
            // Straggler rule (§3): a packet cannot be delivered in the
            // receiver's past. If the receiver finished its quantum, `pos`
            // is the quantum end, i.e. the next quantum's start — the
            // Figure 3(d) "latency snaps to next quantum" case.
            let eff = d.arrival.max(pos);
            if eff > d.arrival {
                #[cfg(feature = "fault-inject")]
                let skip = crate::fault::armed(crate::fault::Fault::DetStragglerSkip);
                #[cfg(not(feature = "fault-inject"))]
                let skip = false;
                if !skip {
                    self.net.record_straggler(eff - d.arrival);
                    if R::ENABLED {
                        self.q_stragglers.record(eff - d.arrival);
                    }
                }
            }
            let completed = self.nodes[j].exec.deliver_fragment(
                d.packet.payload.meta,
                d.packet.payload.frag_index,
                eff,
            );
            if completed.is_some() && !self.nodes[j].done && !self.nodes[j].at_barrier {
                let interrupt = matches!(
                    self.nodes[j].seg,
                    Some(Segment {
                        kind: SegKind::BlockedIdle,
                        ..
                    })
                );
                if interrupt {
                    let node = &mut self.nodes[j];
                    node.sim = pos;
                    node.host = now;
                    node.gen += 1; // invalidate the scheduled yield
                    node.seg = None;
                    self.advance_node(j);
                }
            }
        }
    }

    fn into_result(mut self) -> (RunResult, R) {
        let final_host = self.final_host;
        let per_node: Vec<NodeResult> = self
            .nodes
            .iter()
            .map(|n| NodeResult {
                rank: n.exec.rank(),
                finish_sim: n
                    .exec
                    .finish_time()
                    .expect("run finished with unfinished node"),
                finish_host: n.finish_host.expect("done node without finish host"),
                ops: n.exec.ops_executed(),
                messages_received: n.exec.messages_received(),
                regions: n.exec.regions().to_vec(),
            })
            .collect();
        let sim_end = per_node
            .iter()
            .map(|n| n.finish_sim)
            .max()
            .expect("at least two nodes");
        if R::ENABLED {
            // The run ends mid-quantum (the last program finishes before the
            // barrier), so flush a final partial sample: without it the
            // per-quantum packet counts would not sum to `total_packets`.
            let np = self.net.end_quantum();
            let len = if sim_end > self.q_start {
                sim_end - self.q_start
            } else {
                SimDuration::ZERO
            };
            self.rec.record_quantum(&QuantumObs {
                index: self.q_index,
                start: self.q_start,
                len,
                packets: np,
                active_nodes: per_node.len() as u64,
                stragglers: self.q_stragglers.count(),
                max_straggler_delay: self.q_stragglers.max_delay(),
                // No barrier ran for the partial quantum: the per-node lanes
                // carry no information, so leave them zero-filled.
                barrier_wait_ns: &[],
                vt_lag_ns: &[],
            });
        }
        let result = RunResult {
            sync_label: self.policy.label(),
            n_nodes: per_node.len(),
            sim_end,
            host_elapsed: final_host - HostTime::ZERO,
            per_node,
            stragglers: *self.net.stragglers(),
            total_packets: self.net.total_packets(),
            total_quanta: self.quanta.total_quanta(),
            quanta: self.quanta,
            traffic: self.net.into_trace(),
            progress: self.progress.points().to_vec(),
        };
        (result, self.rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BarrierCostModel;
    use aqs_core::SyncConfig;
    use aqs_net::PerfectSwitch;
    use aqs_node::{HostModel, ProgramBuilder, Rank, RegionId, Tag};
    use aqs_obs::NullRecorder;

    /// Test shorthand for an unrecorded perfect-switch run.
    fn run_cluster(programs: Vec<Program>, config: &ClusterConfig) -> RunResult {
        match run_cluster_impl(programs, config, PerfectSwitch::new(), NullRecorder) {
            Ok((result, _)) => result,
            Err(e) => panic!("{e}"),
        }
    }

    fn ping_pong_programs(rounds: usize) -> Vec<Program> {
        let mut a = ProgramBuilder::new(Rank::new(0)).region_start(RegionId::KERNEL);
        let mut b = ProgramBuilder::new(Rank::new(1));
        for _ in 0..rounds {
            a = a
                .send(Rank::new(1), 64, Tag::new(0))
                .recv(Some(Rank::new(1)), Tag::new(1));
            b = b
                .recv(Some(Rank::new(0)), Tag::new(0))
                .send(Rank::new(0), 64, Tag::new(1));
        }
        vec![a.region_end(RegionId::KERNEL).build(), b.build()]
    }

    fn quick_config(sync: SyncConfig) -> ClusterConfig {
        ClusterConfig::new(sync)
            .with_seed(11)
            .with_quantum_trace(true)
    }

    #[test]
    fn ping_pong_completes_under_ground_truth() {
        let result = run_cluster(
            ping_pong_programs(5),
            &quick_config(SyncConfig::ground_truth()),
        );
        assert_eq!(result.n_nodes, 2);
        assert_eq!(
            result.stragglers.count(),
            0,
            "Q <= T must be straggler-free"
        );
        // 5 round trips = 10 unicast packets.
        assert_eq!(result.total_packets, 10);
        assert_eq!(result.per_node[0].messages_received, 5);
        assert_eq!(result.per_node[1].messages_received, 5);
        assert!(result.sim_end > SimTime::ZERO);
        assert!(result.host_elapsed > aqs_time::HostDuration::ZERO);
    }

    #[test]
    fn run_is_deterministic() {
        let cfg = quick_config(SyncConfig::paper_dyn1());
        let a = run_cluster(ping_pong_programs(5), &cfg);
        let b = run_cluster(ping_pong_programs(5), &cfg);
        assert_eq!(a.sim_end, b.sim_end);
        assert_eq!(a.host_elapsed, b.host_elapsed);
        assert_eq!(a.stragglers.count(), b.stragglers.count());
        assert_eq!(a.total_quanta, b.total_quanta);
    }

    #[test]
    fn different_seed_changes_host_time_not_function() {
        let base = quick_config(SyncConfig::ground_truth());
        let a = run_cluster(ping_pong_programs(3), &base.clone().with_seed(1));
        let b = run_cluster(ping_pong_programs(3), &base.with_seed(2));
        // Functional outcome identical under ground truth…
        assert_eq!(
            a.per_node[0].messages_received,
            b.per_node[0].messages_received
        );
        assert_eq!(a.sim_end, b.sim_end);
        // …but the modelled host takes different wall time.
        assert_ne!(a.host_elapsed, b.host_elapsed);
    }

    #[test]
    fn longer_quanta_are_faster_but_dilate_time() {
        let programs = ping_pong_programs(20);
        let truth = run_cluster(programs.clone(), &quick_config(SyncConfig::ground_truth()));
        let loose = run_cluster(programs, &quick_config(SyncConfig::fixed_micros(100)));
        assert!(
            loose.host_elapsed < truth.host_elapsed,
            "bigger quantum must be faster: {} vs {}",
            loose.host_elapsed,
            truth.host_elapsed
        );
        // Round trips snap to quantum boundaries, dilating simulated time.
        assert!(loose.sim_end > truth.sim_end);
        assert!(
            loose.stragglers.count() > 0,
            "latency-bound ping-pong must straggle"
        );
    }

    #[test]
    fn compute_only_nodes_never_straggle() {
        let p0 = ProgramBuilder::new(Rank::new(0)).compute(500_000).build();
        let p1 = ProgramBuilder::new(Rank::new(1)).compute(900_000).build();
        let result = run_cluster(vec![p0, p1], &quick_config(SyncConfig::fixed_micros(1000)));
        assert_eq!(result.total_packets, 0);
        assert_eq!(result.stragglers.count(), 0);
        assert_eq!(result.total_ops(), 1_400_000);
    }

    #[test]
    fn adaptive_quantum_grows_in_silence_and_shrinks_on_traffic() {
        // Long compute, one message exchange, long compute.
        let mk = |r: u32, peer: u32| {
            let mut b = ProgramBuilder::new(Rank::new(r)).compute(3_000_000);
            if r == 0 {
                b = b.send(Rank::new(peer), 64, Tag::new(0));
            } else {
                b = b.recv(Some(Rank::new(peer)), Tag::new(0));
            }
            b.compute(3_000_000).build()
        };
        let cfg = quick_config(SyncConfig::paper_dyn1());
        let result = run_cluster(vec![mk(0, 1), mk(1, 0)], &cfg);
        let records = result.quanta.records();
        assert!(!records.is_empty());
        let max_q = records.iter().map(|r| r.length).max().unwrap();
        assert!(
            max_q > SimDuration::from_micros(5),
            "quantum should have grown during compute, max was {max_q}"
        );
        // Find the quantum that saw the packet: the next one must shrink.
        let busy = records
            .iter()
            .position(|r| r.packets > 0)
            .expect("packet quantum");
        if busy + 1 < records.len() {
            assert!(records[busy + 1].length < records[busy].length);
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let n = 4;
        let mut programs = vec![ProgramBuilder::new(Rank::new(0))
            .send_all(64, Tag::new(9))
            .build()];
        for r in 1..n {
            programs.push(
                ProgramBuilder::new(Rank::new(r))
                    .recv(Some(Rank::new(0)), Tag::new(9))
                    .build(),
            );
        }
        let result = run_cluster(programs, &quick_config(SyncConfig::ground_truth()));
        assert_eq!(result.total_packets, 3);
        for r in 1..n as usize {
            assert_eq!(result.per_node[r].messages_received, 1);
        }
    }

    #[test]
    fn multi_fragment_message_reassembles() {
        // 25 kB = 3 jumbo frames.
        let p0 = ProgramBuilder::new(Rank::new(0))
            .send(Rank::new(1), 25_000, Tag::new(0))
            .build();
        let p1 = ProgramBuilder::new(Rank::new(1))
            .recv(Some(Rank::new(0)), Tag::new(0))
            .build();
        let result = run_cluster(vec![p0, p1], &quick_config(SyncConfig::ground_truth()));
        assert_eq!(result.total_packets, 3);
        assert_eq!(result.per_node[1].messages_received, 1);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn recv_without_send_deadlocks() {
        let p0 = ProgramBuilder::new(Rank::new(0))
            .recv(Some(Rank::new(1)), Tag::new(0))
            .build();
        let p1 = ProgramBuilder::new(Rank::new(1)).compute(1000).build();
        let _ = run_cluster(vec![p0, p1], &quick_config(SyncConfig::fixed_micros(10)));
    }

    #[test]
    #[should_panic(expected = "program 1 is for rank0")]
    fn mismatched_ranks_rejected() {
        let p = ProgramBuilder::new(Rank::new(0)).compute(1).build();
        let _ = run_cluster(
            vec![p.clone(), p],
            &quick_config(SyncConfig::ground_truth()),
        );
    }

    #[test]
    fn barrier_cost_dominates_small_quanta() {
        let programs = |_| {
            vec![
                ProgramBuilder::new(Rank::new(0)).compute(2_600_000).build(),
                ProgramBuilder::new(Rank::new(1)).compute(2_600_000).build(),
            ]
        };
        let expensive = quick_config(SyncConfig::ground_truth());
        let free = quick_config(SyncConfig::ground_truth()).with_barrier(BarrierCostModel::free());
        let slow = run_cluster(programs(()), &expensive);
        let fast = run_cluster(programs(()), &free);
        assert!(
            slow.host_elapsed > fast.host_elapsed * 5,
            "barrier cost should dominate 1 µs quanta: {} vs {}",
            slow.host_elapsed,
            fast.host_elapsed
        );
    }

    /// Figure 3(d): a packet that reaches the controller after its
    /// receiver finished the quantum is delivered at the next quantum
    /// start, and the snap is accounted as straggler delay.
    #[test]
    fn fig3d_snap_to_next_quantum() {
        // Node 1 is made enormously fast so it finishes the whole quantum
        // (and blocks at the barrier) long before node 0's packet reaches
        // the controller in host time.
        let q = SimDuration::from_micros(100);
        let p0 = ProgramBuilder::new(Rank::new(0))
            .compute(130_000) // 50 µs at 2.6 GHz: send mid-quantum
            .send(Rank::new(1), 64, Tag::new(0))
            .build();
        let p1 = ProgramBuilder::new(Rank::new(1))
            .recv(Some(Rank::new(0)), Tag::new(0))
            .build();
        let cfg = ClusterConfig::new(SyncConfig::Fixed(q))
            .with_seed(2)
            .with_host(HostModel::uniform(30.0, 1.0))
            // Node 1 "simulates" 3000x faster: it is at its barrier while
            // node 0 is still computing.
            .with_node_host(1, HostModel::uniform(0.01, 1.0));
        let result = run_cluster(vec![p0, p1], &cfg);
        assert_eq!(result.stragglers.count(), 1);
        // Ideal arrival ≈ 51 µs; delivery snapped to the quantum end at
        // 100 µs → delay ≈ 49 µs (serialization detail gives ±1 µs).
        let delay = result.stragglers.total_delay();
        assert!(
            delay > SimDuration::from_micros(45) && delay < SimDuration::from_micros(52),
            "snap delay was {delay}"
        );
        // The receiver's recv therefore completed at the next quantum start
        // (+ 2 µs software overhead), i.e. at ≈ 102 µs.
        let finish = result.per_node[1].finish_sim;
        assert!(
            finish >= SimTime::from_micros(100) && finish <= SimTime::from_micros(104),
            "receiver finished at {finish}"
        );
    }

    /// A blocked node's idle traversal is interrupted by a delivery whose
    /// arrival lies *behind* the traversal position: the packet straggles
    /// by the receiver's progress, not by the full quantum.
    #[test]
    fn blocked_receiver_interrupt_mid_quantum() {
        let q = SimDuration::from_micros(1000);
        let p0 = ProgramBuilder::new(Rank::new(0))
            .compute(260_000) // 100 µs, then send
            .send(Rank::new(1), 64, Tag::new(0))
            .compute(2_600_000)
            .build();
        let p1 = ProgramBuilder::new(Rank::new(1))
            .recv(Some(Rank::new(0)), Tag::new(0))
            .build();
        // Identical, deterministic speeds with NO idle fast-forward: the
        // blocked receiver's virtual clock tracks the sender's, and a slow
        // controller hop (90 µs host = 3 µs of guest progress at the 30x
        // slowdown) puts the receiver slightly past the 1 µs-latency
        // arrival when the fragment lands.
        let mut cfg = ClusterConfig::new(SyncConfig::Fixed(q))
            .with_seed(3)
            .with_host(HostModel::uniform(30.0, 1.0));
        cfg.controller_hop = aqs_time::HostDuration::from_micros(90);
        let result = run_cluster(vec![p0, p1], &cfg);
        // The straggle is hop-sized (~2 µs), not quantum-sized (1000 µs):
        // the delivery interrupted the receiver's idle traversal instead of
        // waiting for the barrier.
        assert_eq!(result.stragglers.count(), 1);
        assert!(
            result.stragglers.total_delay() < SimDuration::from_micros(5),
            "delay {} should be ~hop-sized, not quantum-sized",
            result.stragglers.total_delay()
        );
        // And the receiver finished mid-quantum — it did NOT wait for the
        // barrier (the interrupt worked).
        assert!(result.per_node[1].finish_sim < SimTime::from_micros(400));
    }

    #[test]
    fn sampling_speeds_up_and_biases_timing() {
        use aqs_node::SamplingModel;
        // Many fine-grained ops: the timing bias is sampled at each op's
        // start, so op granularity must undercut the sampling interval.
        let programs = || {
            let mk = |r| {
                let mut b = ProgramBuilder::new(Rank::new(r));
                for _ in 0..50 {
                    b = b.compute(100_000);
                }
                b.build()
            };
            vec![mk(0), mk(1)]
        };
        let base = quick_config(SyncConfig::fixed_micros(100));
        let plain = run_cluster(programs(), &base);
        let sampled = run_cluster(
            programs(),
            &base.clone().with_sampling(SamplingModel::new(
                SimDuration::from_micros(200),
                0.1,
                20.0,
                0.05,
            )),
        );
        assert!(
            sampled.host_elapsed < plain.host_elapsed,
            "sampling must cut host time: {} vs {}",
            sampled.host_elapsed,
            plain.host_elapsed
        );
        // Fast-forward timing estimation perturbs the simulated timeline…
        assert_ne!(sampled.sim_end, plain.sim_end);
        // …but only by the modelled few percent.
        let ratio = sampled.sim_end.as_nanos() as f64 / plain.sim_end.as_nanos() as f64;
        assert!(
            (0.8..1.2).contains(&ratio),
            "timing bias too large: {ratio}"
        );
        // Functional behaviour is untouched.
        assert_eq!(sampled.total_ops(), plain.total_ops());
    }

    #[test]
    fn zero_error_sampling_keeps_timeline() {
        use aqs_node::SamplingModel;
        let programs = vec![
            ProgramBuilder::new(Rank::new(0)).compute(2_000_000).build(),
            ProgramBuilder::new(Rank::new(1)).compute(2_000_000).build(),
        ];
        let base = quick_config(SyncConfig::fixed_micros(100));
        let plain = run_cluster(programs.clone(), &base);
        let sampled = run_cluster(
            programs,
            &base.with_sampling(SamplingModel::new(
                SimDuration::from_micros(200),
                0.1,
                20.0,
                0.0,
            )),
        );
        assert_eq!(
            sampled.sim_end, plain.sim_end,
            "zero-sigma sampling must be exact"
        );
        assert!(sampled.host_elapsed < plain.host_elapsed);
    }

    #[test]
    fn flight_recorder_packet_sum_matches_total_and_run_is_unperturbed() {
        use aqs_obs::{FlightRecorder, ObsConfig};
        let cfg = quick_config(SyncConfig::paper_dyn1());
        let (result, fr) = run_cluster_impl(
            ping_pong_programs(5),
            &cfg,
            PerfectSwitch::new(),
            FlightRecorder::new(2, ObsConfig::new()),
        )
        .expect("run succeeds");
        assert_eq!(
            fr.total_packets(),
            result.total_packets,
            "per-quantum packet counts must sum to the run total"
        );
        assert!(fr.total_quanta() > 0);
        let sample_sum: u64 = fr.samples().map(|s| s.packets).sum();
        assert_eq!(sample_sum, result.total_packets, "ring kept every quantum");
        // Recording must not perturb the simulation itself.
        let null = run_cluster(ping_pong_programs(5), &cfg);
        assert_eq!(null.sim_end, result.sim_end);
        assert_eq!(null.host_elapsed, result.host_elapsed);
        assert_eq!(null.total_quanta, result.total_quanta);
    }

    #[test]
    fn uniform_speeds_and_free_hop_match_ideal_roundtrip() {
        // With identical node speeds there is no skew; the ping-pong's
        // simulated duration equals the ideal network latency budget.
        let cfg = ClusterConfig::new(SyncConfig::ground_truth())
            .with_host(HostModel::uniform(30.0, 0.02))
            .with_seed(5);
        let result = run_cluster(ping_pong_programs(1), &cfg);
        assert_eq!(result.stragglers.count(), 0);
        // Round trip: 2 × (64 B serialization + 1 µs latency + 2 µs recv
        // overhead), plus scheduling rounding.
        let span = result.per_node[0].region_duration(RegionId::KERNEL);
        let ideal = SimDuration::from_nanos(2 * (52 + 1_000 + 2_000));
        let slack = SimDuration::from_micros(2);
        assert!(
            span >= ideal && span <= ideal + slack,
            "round trip {span} outside [{ideal}, {}]",
            ideal + slack
        );
    }
}
