//! The unified engine API: one builder, six engines, one report.
//!
//! Historically each engine had its own free-function entry point
//! (`run_cluster`, `run_cluster_with_switch`, `run_parallel`,
//! `run_optimistic`) with its own config and result types, so every
//! benchmark and test hard-wired one engine. [`Sim`] folds them behind a
//! single builder: pick the engine with [`Sim::engine`], tune it with the
//! shared [`ClusterConfig`] plus engine-specific knobs, optionally attach a
//! quantum-level [`FlightRecorder`] with [`Sim::record`], and get back one
//! [`RunReport`] whose common fields mean the same thing everywhere.
//!
//! # Examples
//!
//! ```
//! use aqs_cluster::{EngineKind, Sim};
//! use aqs_core::SyncConfig;
//! use aqs_obs::ObsConfig;
//! use aqs_workloads::ping_pong;
//!
//! let spec = ping_pong(2, 3, 64);
//! let report = Sim::new(spec.programs)
//!     .sync(SyncConfig::ground_truth())
//!     .engine(EngineKind::Deterministic)
//!     .record(ObsConfig::new())
//!     .run();
//! assert_eq!(report.stragglers.count(), 0); // Q ≤ T is straggler-free
//! assert_eq!(report.messages_received, 6);
//! let obs = report.obs.as_ref().expect("recording was enabled");
//! assert_eq!(obs.total_packets(), report.total_packets);
//! ```

use crate::config::ClusterConfig;
use crate::engine::{run_cluster_det, DetOutcome};
use crate::optimistic::{run_optimistic_impl, OptimisticConfig, OptimisticRunResult};
use crate::parallel::{run_parallel_impl, ParallelConfig, ParallelRunResult, ParallelSwitch};
use crate::result::RunResult;
use crate::sharded::{run_sharded_impl, ShardedRunResult};
use crate::sharded_optimistic::{
    run_sharded_optimistic_impl, HybridPolicy, ShardedOptimisticOpts, ShardedOptimisticRunResult,
};
use crate::snapshot::{ResumeSeed, SimSnapshot, SnapshotBody};
use aqs_core::SyncConfig;
use aqs_net::{
    ChaosConfig, ChaosOverlay, ChaosSwitch, FabricConfig, FatTreeFabric, LatencyMatrixSwitch,
    PerfectSwitch, StoreAndForwardSwitch, StragglerStats,
};
use aqs_node::Program;
use aqs_obs::{FlightRecorder, NullRecorder, ObsConfig, Recorder};
use aqs_time::{HostDuration, SimDuration, SimTime};
use std::fmt;
use std::time::Duration;

/// Which engine executes the simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The deterministic meta-engine: a DES of the parallel simulation on a
    /// modelled host clock. Exactly reproducible timing.
    #[default]
    Deterministic,
    /// The threaded engine: one OS thread per node, real barriers, real
    /// wall-clock. Machine-dependent timing, exact functional results under
    /// the safe quantum.
    Threaded,
    /// The optimistic (checkpoint/rollback) engine: free-running windows
    /// with fixed-point re-execution. Exact simulated timeline.
    Optimistic,
    /// The sharded engine: N node simulators on M worker threads with
    /// quantum-edge-deterministic delivery. Real wall-clock; functional
    /// results are bit-identical for every worker count.
    Sharded,
    /// The optimistic mechanism rebuilt on the sharded substrate: per-shard
    /// checkpoint rings, GVT reduced by the tree-barrier leader, rollback
    /// confined to the offending shard by a cascade bound (past the bound
    /// the shard degrades to conservative execution for one window).
    ShardedOptimistic,
    /// The sharded-optimistic engine with the adaptive [`HybridPolicy`]:
    /// each shard independently switches between conservative and
    /// optimistic execution based on its observed straggler rate and
    /// rollback waste. Bit-identical to the deterministic engine under the
    /// safe quantum (`Q ≤ T`).
    Hybrid,
}

impl EngineKind {
    /// Short lowercase name (`deterministic` / `threaded` / `optimistic` /
    /// `sharded` / `sharded-optimistic` / `hybrid`).
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Deterministic => "deterministic",
            EngineKind::Threaded => "threaded",
            EngineKind::Optimistic => "optimistic",
            EngineKind::Sharded => "sharded",
            EngineKind::ShardedOptimistic => "sharded-optimistic",
            EngineKind::Hybrid => "hybrid",
        }
    }
}

/// Switch timing model for a [`Sim`] run.
///
/// Not every engine supports every switch: the threaded engine needs a
/// stateless model (no shared mutable switch state between threads) and the
/// optimistic engine routes with the NIC minimum latency only. [`Sim::run`]
/// panics with a clear message on an unsupported combination rather than
/// silently ignoring the model.
#[derive(Clone, Debug, Default)]
pub enum SimSwitch {
    /// Infinite bandwidth, zero transit delay (the paper's evaluation
    /// switch). Supported by every engine.
    #[default]
    Perfect,
    /// Fixed per-(src, dst) latency. Deterministic and threaded engines.
    LatencyMatrix(LatencyMatrixSwitch),
    /// Store-and-forward queueing with finite egress bandwidth.
    /// Deterministic engine only (stateful).
    StoreAndForward(StoreAndForwardSwitch),
    /// A modeled multi-tier fat-tree fabric ([`FatTreeFabric`]): per-link
    /// bandwidth, epoch-keyed queue occupancy, deterministic ECMP hashing.
    /// Transit is a pure function of `(src, dst, bytes, departure)`, so it
    /// is supported by the deterministic, threaded *and* sharded engines —
    /// with bit-identical results for every worker count.
    Fabric(FabricConfig),
}

impl SimSwitch {
    /// Short variant name
    /// (`Perfect` / `LatencyMatrix` / `StoreAndForward` / `Fabric`).
    pub fn name(&self) -> &'static str {
        match self {
            SimSwitch::Perfect => "Perfect",
            SimSwitch::LatencyMatrix(_) => "LatencyMatrix",
            SimSwitch::StoreAndForward(_) => "StoreAndForward",
            SimSwitch::Fabric(_) => "Fabric",
        }
    }
}

/// A configuration error detected by [`Sim::try_run`] before any engine
/// starts: the builder accepted the value (setters only store), but the
/// combination cannot describe a runnable simulation.
///
/// [`Sim::run`] panics with this error's [`Display`](fmt::Display) text;
/// callers that must not crash on a bad request (a job server validating
/// client configs) should use [`Sim::try_run`] and handle the error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Fewer than two programs were given.
    TooFewNodes {
        /// The number of programs provided.
        n: usize,
    },
    /// Program at position `index` was built for a different rank.
    RankMismatch {
        /// Position in the program vector.
        index: usize,
        /// The rank the program was built for.
        rank: u32,
    },
    /// [`Sim::shards`] was called with zero workers.
    ZeroShards,
    /// The selected engine does not support the selected [`SimSwitch`].
    UnsupportedSwitch {
        /// The engine that rejected the switch.
        engine: EngineKind,
        /// The switch's name (as in [`SimSwitch`]).
        switch: &'static str,
        /// Why the combination is unsupported.
        reason: &'static str,
    },
    /// The fabric configuration failed [`FabricConfig::validate`].
    InvalidFabric(String),
    /// The chaos configuration failed [`ChaosConfig::validate`].
    InvalidChaos(String),
    /// The selected engine does not support chaos injection.
    UnsupportedChaos {
        /// The engine that rejected the chaos overlay.
        engine: EngineKind,
    },
    /// A scenario file could not be parsed (see the `aqs-scenario` crate).
    ScenarioParse {
        /// Path of the scenario file.
        file: String,
        /// 1-based line where parsing failed (0 when not line-specific).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A scenario file parsed but describes an invalid experiment.
    ScenarioValidate {
        /// Path of the scenario file.
        file: String,
        /// What is wrong with the scenario.
        message: String,
    },
    /// The workload deadlocked: a quantum completed with zero packets, zero
    /// in-flight fragments, and every unfinished node blocked on a receive
    /// that nothing will ever satisfy.
    Deadlock {
        /// Debug list of the blocked nodes and their program counters.
        nodes: String,
    },
    /// The run exceeded its quantum cap without finishing — on the parallel
    /// engines this is how an unsatisfiable receive manifests.
    QuantumCapExceeded {
        /// The engine that hit the cap.
        engine: EngineKind,
        /// The quantum cap that was exhausted.
        max_quanta: u64,
    },
    /// The optimistic engine's fixed-point iteration failed to converge
    /// within its cap — the free-run window is too long for this traffic.
    WindowNonConvergence {
        /// Simulated start of the window that failed to converge.
        window_start: SimTime,
        /// The iteration cap that was exhausted ([`Sim::max_iterations`]).
        max_iterations: u32,
    },
    /// An internal engine invariant failed. Always a bug, never a workload
    /// property — reported as an error (not a panic) so a resident server
    /// survives it.
    EngineInvariant {
        /// What was violated.
        detail: String,
    },
    /// A snapshot's bytes are structurally invalid: bad magic, unsupported
    /// version, truncated payload, or a field that fails validation on
    /// restore.
    SnapshotFormat {
        /// What is wrong with the snapshot.
        detail: String,
    },
    /// A snapshot's payload checksum does not match: the bytes were
    /// corrupted after capture.
    SnapshotChecksum {
        /// Checksum stored in the header.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
    /// A snapshot was captured from a different simulation spec (programs,
    /// config, switch, or chaos differ) and cannot seed this one.
    SnapshotSpecMismatch {
        /// Fingerprint stored in the snapshot.
        snapshot: u64,
        /// Fingerprint of the simulation being resumed.
        sim: u64,
    },
    /// A node's restored RNG stream fails its probe check: the stream was
    /// advanced or rewound relative to capture time.
    SnapshotRngStream {
        /// The node whose stream failed the probe.
        node: usize,
    },
    /// [`Sim::snapshot_at`] asked for a quantum edge past the end of the
    /// run.
    SnapshotQuantumUnreachable {
        /// The requested quantum edge.
        requested: u64,
        /// Quanta the run actually completed.
        completed: u64,
    },
    /// The engine does not support snapshot/resume.
    SnapshotUnsupported {
        /// The engine that cannot snapshot or resume.
        engine: EngineKind,
    },
}

impl SimError {
    /// Shorthand for a [`SimError::SnapshotFormat`] with the given detail.
    pub(crate) fn snapshot_format(detail: impl Into<String>) -> Self {
        SimError::SnapshotFormat {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooFewNodes { n } => {
                write!(f, "a cluster needs at least 2 nodes, got {n}")
            }
            SimError::RankMismatch { index, rank } => {
                write!(f, "program {index} is for rank {rank}, want rank {index}")
            }
            SimError::ZeroShards => write!(f, "a sharded run needs at least one worker"),
            SimError::UnsupportedSwitch {
                engine,
                switch,
                reason,
            } => write!(
                f,
                "the {} engine does not support the {switch} switch ({reason})",
                engine.name()
            ),
            SimError::InvalidFabric(reason) => {
                write!(f, "invalid fabric configuration: {reason}")
            }
            SimError::InvalidChaos(reason) => {
                write!(f, "invalid chaos configuration: {reason}")
            }
            SimError::UnsupportedChaos { engine } => write!(
                f,
                "the {} engine does not support chaos injection (it routes with the NIC \
                 minimum latency only)",
                engine.name()
            ),
            SimError::ScenarioParse {
                file,
                line,
                message,
            } => {
                if *line == 0 {
                    write!(f, "{file}: scenario parse error: {message}")
                } else {
                    write!(f, "{file}:{line}: scenario parse error: {message}")
                }
            }
            SimError::ScenarioValidate { file, message } => {
                write!(f, "{file}: invalid scenario: {message}")
            }
            SimError::Deadlock { nodes } => {
                write!(
                    f,
                    "workload deadlock: no packets in flight and nodes blocked: {nodes}"
                )
            }
            SimError::QuantumCapExceeded { engine, max_quanta } => write!(
                f,
                "quantum cap exceeded: the {} engine ran {max_quanta} quanta without \
                 finishing — workload deadlock?",
                engine.name()
            ),
            SimError::WindowNonConvergence {
                window_start,
                max_iterations,
            } => write!(
                f,
                "optimistic window at {window_start} failed to converge within \
                 {max_iterations} iterations (window too long for this traffic?)"
            ),
            SimError::EngineInvariant { detail } => {
                write!(f, "engine invariant violated: {detail}")
            }
            SimError::SnapshotFormat { detail } => {
                write!(f, "invalid snapshot: {detail}")
            }
            SimError::SnapshotChecksum { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:#018x}, \
                 payload hashes to {actual:#018x}"
            ),
            SimError::SnapshotSpecMismatch { snapshot, sim } => write!(
                f,
                "snapshot is from a different simulation spec \
                 (snapshot fingerprint {snapshot:#018x}, this sim {sim:#018x})"
            ),
            SimError::SnapshotRngStream { node } => write!(
                f,
                "snapshot RNG stream for node {node} fails its probe check \
                 (stream advanced or rewound since capture)"
            ),
            SimError::SnapshotQuantumUnreachable {
                requested,
                completed,
            } => write!(
                f,
                "cannot snapshot at quantum {requested}: the run finished \
                 after {completed} quanta"
            ),
            SimError::SnapshotUnsupported { engine } => write!(
                f,
                "the {} engine does not support snapshot/resume",
                engine.name()
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Wall-clock of a run — modelled host time (deterministic and optimistic
/// engines) or real elapsed time (threaded engine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WallClock {
    /// Modelled host duration (exactly reproducible).
    Modelled(HostDuration),
    /// Real measured duration (machine-dependent).
    Real(Duration),
}

impl WallClock {
    /// The wall-clock in seconds, whichever kind it is.
    pub fn as_secs_f64(&self) -> f64 {
        match self {
            WallClock::Modelled(d) => d.as_secs_f64(),
            WallClock::Real(d) => d.as_secs_f64(),
        }
    }
}

/// Engine-specific result payload carried by a [`RunReport`].
///
/// The deterministic and threaded results are boxed: they embed traces and
/// straggler histograms and would otherwise dominate every report's size.
#[derive(Clone, Debug)]
pub enum EngineDetail {
    /// Full deterministic-engine result.
    Deterministic(Box<RunResult>),
    /// Full threaded-engine result.
    Threaded(Box<ParallelRunResult>),
    /// Full optimistic-engine result.
    Optimistic(OptimisticRunResult),
    /// Full sharded-engine result.
    Sharded(Box<ShardedRunResult>),
    /// Full sharded-optimistic result (both the pure and hybrid kinds; the
    /// result's `hybrid` flag tells them apart).
    ShardedOptimistic(Box<ShardedOptimisticRunResult>),
}

impl EngineDetail {
    /// The deterministic result, if this run used that engine.
    pub fn as_deterministic(&self) -> Option<&RunResult> {
        match self {
            EngineDetail::Deterministic(r) => Some(r),
            _ => None,
        }
    }

    /// The threaded result, if this run used that engine.
    pub fn as_threaded(&self) -> Option<&ParallelRunResult> {
        match self {
            EngineDetail::Threaded(r) => Some(r),
            _ => None,
        }
    }

    /// The optimistic result, if this run used that engine.
    pub fn as_optimistic(&self) -> Option<&OptimisticRunResult> {
        match self {
            EngineDetail::Optimistic(r) => Some(r),
            _ => None,
        }
    }

    /// The sharded result, if this run used that engine.
    pub fn as_sharded(&self) -> Option<&ShardedRunResult> {
        match self {
            EngineDetail::Sharded(r) => Some(r),
            _ => None,
        }
    }

    /// The sharded-optimistic result, if this run used that engine (in
    /// either its pure or hybrid form).
    pub fn as_sharded_optimistic(&self) -> Option<&ShardedOptimisticRunResult> {
        match self {
            EngineDetail::ShardedOptimistic(r) => Some(r),
            _ => None,
        }
    }
}

/// The engine-independent functional outcome of a run: everything that must
/// be bit-identical when two runs simulate the same workload exactly —
/// across engines under the safe quantum, or between recorded and
/// unrecorded runs of the same engine. Wall-clock and engine-specific
/// counters (quanta vs. windows) are deliberately excluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimulatedOutcome {
    /// Simulated completion time.
    pub sim_end: SimTime,
    /// Packets delivered.
    pub total_packets: u64,
    /// Messages fully received, summed over nodes.
    pub messages_received: u64,
    /// Stragglers observed.
    pub straggler_count: u64,
    /// Per-node `(rank, finish_sim, ops, messages_received)`.
    pub per_node: Vec<(u32, SimTime, u64, u64)>,
}

/// Common result of a [`Sim`] run, whatever the engine.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Engine that produced this report.
    pub engine: EngineKind,
    /// Label of the synchronization policy (the optimistic engine, which
    /// has no quantum, reports `"optimistic"`).
    pub sync_label: String,
    /// Number of nodes.
    pub n_nodes: usize,
    /// Simulated completion time (max across nodes).
    pub sim_end: SimTime,
    /// Packets delivered over the run.
    pub total_packets: u64,
    /// Messages fully received, summed over nodes.
    pub messages_received: u64,
    /// Straggler statistics (always zero for the optimistic engine, which
    /// re-executes instead of delivering late).
    pub stragglers: StragglerStats,
    /// Quanta executed (windows, for the optimistic engine).
    pub total_quanta: u64,
    /// Wall-clock — modelled or real depending on the engine.
    pub wall_clock: WallClock,
    /// The engine's full native result.
    pub detail: EngineDetail,
    /// The flight recorder, when [`Sim::record`] was used.
    pub obs: Option<FlightRecorder>,
}

impl RunReport {
    /// Wall-clock speedup of this run relative to `baseline`. Returns 0.0
    /// when the baseline took no measurable time (instead of dividing by
    /// zero).
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        let base = baseline.wall_clock.as_secs_f64();
        let own = self.wall_clock.as_secs_f64();
        if base <= 0.0 {
            return 0.0;
        }
        base / own.max(1e-12)
    }

    /// The engine-independent functional outcome (see [`SimulatedOutcome`]).
    pub fn simulated_outcome(&self) -> SimulatedOutcome {
        let per_node = match &self.detail {
            EngineDetail::Deterministic(r) => r
                .per_node
                .iter()
                .map(|n| (n.rank.as_u32(), n.finish_sim, n.ops, n.messages_received))
                .collect(),
            EngineDetail::Threaded(r) => r
                .per_node
                .iter()
                .map(|n| (n.rank.as_u32(), n.finish_sim, n.ops, n.messages_received))
                .collect(),
            EngineDetail::Optimistic(r) => r
                .per_node
                .iter()
                .map(|n| (n.rank.as_u32(), n.finish_sim, n.ops, n.messages_received))
                .collect(),
            EngineDetail::Sharded(r) => r
                .per_node
                .iter()
                .map(|n| (n.rank.as_u32(), n.finish_sim, n.ops, n.messages_received))
                .collect(),
            EngineDetail::ShardedOptimistic(r) => r
                .per_node
                .iter()
                .map(|n| (n.rank.as_u32(), n.finish_sim, n.ops, n.messages_received))
                .collect(),
        };
        SimulatedOutcome {
            sim_end: self.sim_end,
            total_packets: self.total_packets,
            messages_received: self.messages_received,
            straggler_count: self.stragglers.count(),
            per_node,
        }
    }
}

/// Builder for a cluster simulation run on any engine.
///
/// Every setter is consuming (`self -> Self`) and **order-independent**:
/// setters only store values, and nothing is derived until [`Sim::run`].
/// The one exception to watch is [`Sim::config`], which replaces the whole
/// base [`ClusterConfig`] — call it before the convenience setters
/// ([`Sim::sync`], [`Sim::seed`]) that write into that config.
///
/// See the [module docs](self) for an example.
#[derive(Clone, Debug)]
pub struct Sim {
    programs: Vec<Program>,
    engine: EngineKind,
    config: ClusterConfig,
    switch: SimSwitch,
    host_work_per_op: f64,
    max_quanta: u64,
    window: SimDuration,
    checkpoint_cost: HostDuration,
    rollback_cost: HostDuration,
    gvt_cost: HostDuration,
    max_iterations: u32,
    shards: Option<usize>,
    cascade_bound: u32,
    ring_depth: usize,
    hybrid_policy: HybridPolicy,
    obs: Option<ObsConfig>,
    chaos: Option<ChaosConfig>,
    full_sweep: bool,
}

impl Sim {
    /// Starts a builder for `programs` (one per node, rank *i* on node *i*)
    /// with the deterministic engine, the paper's ground-truth quantum, and
    /// no recording.
    pub fn new(programs: Vec<Program>) -> Self {
        let defaults = OptimisticConfig::new(ClusterConfig::new(SyncConfig::ground_truth()));
        Self {
            programs,
            engine: EngineKind::Deterministic,
            config: ClusterConfig::new(SyncConfig::ground_truth()),
            switch: SimSwitch::Perfect,
            host_work_per_op: 0.0,
            max_quanta: u64::MAX,
            window: defaults.window,
            checkpoint_cost: defaults.checkpoint_cost,
            rollback_cost: defaults.rollback_cost,
            gvt_cost: defaults.gvt_cost,
            max_iterations: defaults.max_iterations,
            shards: None,
            cascade_bound: 8,
            ring_depth: 4,
            hybrid_policy: HybridPolicy::default(),
            obs: None,
            chaos: None,
            full_sweep: false,
        }
    }

    /// Selects the engine.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the whole base [`ClusterConfig`] (models, seed, traces).
    /// Call before [`Sim::sync`]/[`Sim::seed`], which modify this config.
    #[must_use]
    pub fn config(mut self, config: ClusterConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the synchronization policy.
    #[must_use]
    pub fn sync(mut self, sync: SyncConfig) -> Self {
        self.config.sync = sync;
        self
    }

    /// Sets the experiment seed (deterministic and optimistic engines).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the switch timing model (see [`SimSwitch`] for engine support).
    #[must_use]
    pub fn switch(mut self, switch: SimSwitch) -> Self {
        self.switch = switch;
        self
    }

    /// Threaded engine: real host nanoseconds of busy-work per simulated
    /// operation (see [`ParallelConfig::host_work_per_op`]).
    #[must_use]
    pub fn host_work_per_op(mut self, factor: f64) -> Self {
        self.host_work_per_op = factor;
        self
    }

    /// Threaded engine: hard cap on quanta (deadlock guard).
    #[must_use]
    pub fn max_quanta(mut self, max: u64) -> Self {
        self.max_quanta = max;
        self
    }

    /// Optimistic engine: free-run window length.
    #[must_use]
    pub fn window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// Optimistic engine: per-checkpoint and per-rollback host costs.
    #[must_use]
    pub fn optimistic_costs(mut self, checkpoint: HostDuration, rollback: HostDuration) -> Self {
        self.checkpoint_cost = checkpoint;
        self.rollback_cost = rollback;
        self
    }

    /// Optimistic engine: fixed-point iteration cap per window.
    #[must_use]
    pub fn max_iterations(mut self, cap: u32) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Sharded engine: number of worker threads (shards). Defaults to the
    /// host's available parallelism; always clamped to the node count
    /// (`min(m, n)`), so over-asking is harmless. Functional results are
    /// identical for every value.
    ///
    /// Zero is rejected by [`Sim::run`]/[`Sim::try_run`] with
    /// [`SimError::ZeroShards`] — the setter itself never panics, so a job
    /// server can surface the error instead of crashing.
    #[must_use]
    pub fn shards(mut self, m: usize) -> Self {
        self.shards = Some(m);
        self
    }

    /// Sharded-optimistic engines: how many re-executions a shard may take
    /// within one window before it is frozen and degraded to conservative
    /// execution for the next window. Zero means every violation degrades
    /// immediately (fully conservative after the first straggler).
    #[must_use]
    pub fn cascade_bound(mut self, bound: u32) -> Self {
        self.cascade_bound = bound;
        self
    }

    /// Sharded-optimistic engines: checkpoint ring depth per shard (how
    /// many window-start snapshots are retained). Clamped to at least 1.
    #[must_use]
    pub fn checkpoint_ring(mut self, depth: usize) -> Self {
        self.ring_depth = depth;
        self
    }

    /// Hybrid engine: the adaptive conservative/optimistic switching policy
    /// (ignored by every other engine).
    #[must_use]
    pub fn hybrid_policy(mut self, policy: HybridPolicy) -> Self {
        self.hybrid_policy = policy;
        self
    }

    /// Attaches deterministic chaos middleware (seeded link flaps,
    /// partitions, packet loss, jitter, node pauses, load spikes — see
    /// [`ChaosConfig`]) on top of the configured switch. The overlay's
    /// extra delay is a pure function of `(src, dst, bytes, departure)`
    /// keyed on `(seed, epoch)`, so the same faults replay bit-identically
    /// on the deterministic, threaded, and sharded engines and for every
    /// worker count. The optimistic engine routes with the NIC minimum
    /// latency only and rejects chaos
    /// ([`SimError::UnsupportedChaos`]).
    #[must_use]
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Sharded engines: disable active-set scheduling and execute every
    /// node every quantum (the legacy full sweep). A debug/differential
    /// knob: active-set runs must be bit-identical to full-sweep runs, and
    /// the conformance oracles prove it by running both. Deliberately
    /// excluded from [`Sim::fingerprint`] — like the engine choice, it
    /// cannot change the simulated world.
    #[must_use]
    pub fn force_full_sweep(mut self, on: bool) -> Self {
        self.full_sweep = on;
        self
    }

    /// Attaches a quantum-level flight recorder; the report's
    /// [`RunReport::obs`] will carry it. Recording never perturbs simulated
    /// results and adds no lock to any engine's packet path.
    #[must_use]
    pub fn record(mut self, obs: ObsConfig) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Runs the simulation, panicking on configuration errors.
    ///
    /// This is the convenience wrapper for tests, benches, and examples
    /// where a bad configuration is a bug; [`Sim::try_run`] is the primary
    /// entry point and the one anything driven by external input (the CLI,
    /// the scenario runner, a job server) should call.
    ///
    /// # Panics
    ///
    /// Panics with a [`SimError`]'s message on any configuration error
    /// (fewer than two programs, program *i* not for rank *i*, zero shards,
    /// an engine/switch/chaos combination the engine does not support), or
    /// on the engine's own failure modes (deadlock, quantum-cap overflow,
    /// window non-convergence).
    pub fn run(self) -> RunReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the simulation, returning configuration errors instead of
    /// panicking on them. This is the primary entry point — [`Sim::run`]
    /// is `try_run().unwrap()` in convenience clothing.
    ///
    /// Engine-internal failure modes (deadlock, quantum-cap overflow) still
    /// panic: they indicate a broken *workload*, discovered mid-run, not a
    /// rejectable configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqs_cluster::{Sim, SimError};
    ///
    /// let err = Sim::new(Vec::new()).try_run().unwrap_err();
    /// assert_eq!(err, SimError::TooFewNodes { n: 0 });
    /// ```
    pub fn try_run(self) -> Result<RunReport, SimError> {
        self.validate()?;
        self.run_with(None)
    }

    /// Shared tail of [`Sim::try_run`] and [`Sim::resume`]: wires up the
    /// recorder and dispatches, optionally seeding the engine from a
    /// snapshot body. The caller has already validated.
    fn run_with(self, resume: Option<&SnapshotBody>) -> Result<RunReport, SimError> {
        let n = self.programs.len();
        Ok(match self.obs {
            Some(oc) => {
                let rec = FlightRecorder::new(n, oc);
                let (mut report, rec) = self.dispatch(rec, resume)?;
                report.obs = Some(rec);
                report
            }
            None => self.dispatch(NullRecorder, resume)?.0,
        })
    }

    /// Checks everything that can be rejected before an engine starts.
    fn validate(&self) -> Result<(), SimError> {
        if self.programs.len() < 2 {
            return Err(SimError::TooFewNodes {
                n: self.programs.len(),
            });
        }
        for (i, p) in self.programs.iter().enumerate() {
            if p.rank().index() != i {
                return Err(SimError::RankMismatch {
                    index: i,
                    rank: p.rank().as_u32(),
                });
            }
        }
        if self.shards == Some(0) {
            return Err(SimError::ZeroShards);
        }
        match (self.engine, &self.switch) {
            (
                EngineKind::Threaded
                | EngineKind::Sharded
                | EngineKind::ShardedOptimistic
                | EngineKind::Hybrid,
                SimSwitch::StoreAndForward(_),
            ) => {
                return Err(SimError::UnsupportedSwitch {
                    engine: self.engine,
                    switch: self.switch.name(),
                    reason: "stateful models would serialize the packet path",
                });
            }
            (EngineKind::Optimistic, sw) if !matches!(sw, SimSwitch::Perfect) => {
                return Err(SimError::UnsupportedSwitch {
                    engine: self.engine,
                    switch: self.switch.name(),
                    reason: "it routes with the NIC minimum latency only",
                });
            }
            _ => {}
        }
        if let SimSwitch::Fabric(cfg) = &self.switch {
            cfg.validate().map_err(SimError::InvalidFabric)?;
        }
        if let Some(chaos) = &self.chaos {
            chaos.validate().map_err(SimError::InvalidChaos)?;
            if self.engine == EngineKind::Optimistic {
                return Err(SimError::UnsupportedChaos {
                    engine: self.engine,
                });
            }
        }
        Ok(())
    }

    fn dispatch<R: Recorder>(
        self,
        rec: R,
        resume: Option<&SnapshotBody>,
    ) -> Result<(RunReport, R), SimError> {
        let Sim {
            programs,
            engine,
            config,
            switch,
            host_work_per_op,
            max_quanta,
            window,
            checkpoint_cost,
            rollback_cost,
            gvt_cost,
            max_iterations,
            shards,
            cascade_bound,
            ring_depth,
            hybrid_policy,
            obs: _,
            chaos,
            full_sweep,
        } = self;
        let overlay = chaos.map(|c| ChaosOverlay::new(c).expect("chaos validated before dispatch"));
        // The parallel engines resume from a routed seed (the cut's
        // in-flight fragments plus restored node states); the deterministic
        // engine consumes the body directly.
        let seed: Option<ResumeSeed> = match resume {
            Some(body) if engine != EngineKind::Deterministic => Some(body.seed()?),
            _ => None,
        };
        Ok(match engine {
            EngineKind::Deterministic => {
                let (r, rec) = match run_det(programs, &config, switch, overlay, rec, resume, None)?
                {
                    DetOutcome::Finished(r, rec) => (*r, rec),
                    DetOutcome::Captured(_) => unreachable!("no capture was requested"),
                };
                (det_report(r), rec)
            }
            EngineKind::Threaded => {
                let n = programs.len();
                let par_switch = match switch {
                    SimSwitch::Perfect => ParallelSwitch::Perfect,
                    SimSwitch::LatencyMatrix(m) => ParallelSwitch::LatencyMatrix(m),
                    SimSwitch::Fabric(cfg) => ParallelSwitch::Fabric(FatTreeFabric::new(cfg, n)),
                    SimSwitch::StoreAndForward(_) => {
                        unreachable!("rejected by Sim::validate before dispatch")
                    }
                };
                let par_switch = match overlay {
                    Some(o) => ParallelSwitch::Chaos(o, Box::new(par_switch)),
                    None => par_switch,
                };
                let pcfg = ParallelConfig {
                    sync: config.sync.clone(),
                    nic: config.nic,
                    cpu: config.cpu,
                    switch: par_switch,
                    host_work_per_op,
                    max_quanta,
                    full_sweep,
                };
                let sync_label = pcfg.sync.build().label();
                let (r, rec) = run_parallel_impl(programs, &pcfg, rec, seed.as_ref())?;
                let report = RunReport {
                    engine,
                    sync_label,
                    n_nodes: r.per_node.len(),
                    sim_end: r.sim_end,
                    total_packets: r.total_packets,
                    messages_received: r.messages_received_total(),
                    stragglers: r.stragglers,
                    total_quanta: r.total_quanta,
                    wall_clock: WallClock::Real(r.wall),
                    detail: EngineDetail::Threaded(Box::new(r)),
                    obs: None,
                };
                (report, rec)
            }
            EngineKind::Sharded => {
                let n = programs.len();
                let par_switch = match switch {
                    SimSwitch::Perfect => ParallelSwitch::Perfect,
                    SimSwitch::LatencyMatrix(m) => ParallelSwitch::LatencyMatrix(m),
                    SimSwitch::Fabric(cfg) => ParallelSwitch::Fabric(FatTreeFabric::new(cfg, n)),
                    SimSwitch::StoreAndForward(_) => {
                        unreachable!("rejected by Sim::validate before dispatch")
                    }
                };
                let par_switch = match overlay {
                    Some(o) => ParallelSwitch::Chaos(o, Box::new(par_switch)),
                    None => par_switch,
                };
                let pcfg = ParallelConfig {
                    sync: config.sync.clone(),
                    nic: config.nic,
                    cpu: config.cpu,
                    switch: par_switch,
                    host_work_per_op,
                    max_quanta,
                    full_sweep,
                };
                let sync_label = pcfg.sync.build().label();
                let (r, rec) = run_sharded_impl(programs, &pcfg, shards, rec, seed.as_ref())?;
                let report = RunReport {
                    engine,
                    sync_label,
                    n_nodes: r.per_node.len(),
                    sim_end: r.sim_end,
                    total_packets: r.total_packets,
                    messages_received: r.messages_received_total(),
                    stragglers: r.stragglers,
                    total_quanta: r.total_quanta,
                    wall_clock: WallClock::Real(r.wall),
                    detail: EngineDetail::Sharded(Box::new(r)),
                    obs: None,
                };
                (report, rec)
            }
            EngineKind::ShardedOptimistic | EngineKind::Hybrid => {
                let n = programs.len();
                let par_switch = match switch {
                    SimSwitch::Perfect => ParallelSwitch::Perfect,
                    SimSwitch::LatencyMatrix(m) => ParallelSwitch::LatencyMatrix(m),
                    SimSwitch::Fabric(cfg) => ParallelSwitch::Fabric(FatTreeFabric::new(cfg, n)),
                    SimSwitch::StoreAndForward(_) => {
                        unreachable!("rejected by Sim::validate before dispatch")
                    }
                };
                let par_switch = match overlay {
                    Some(o) => ParallelSwitch::Chaos(o, Box::new(par_switch)),
                    None => par_switch,
                };
                let pcfg = ParallelConfig {
                    sync: config.sync.clone(),
                    nic: config.nic,
                    cpu: config.cpu,
                    switch: par_switch,
                    host_work_per_op,
                    max_quanta,
                    full_sweep,
                };
                let opts = ShardedOptimisticOpts {
                    cascade_bound,
                    ring_depth,
                    hybrid: (engine == EngineKind::Hybrid).then_some(hybrid_policy),
                };
                let sync_label = pcfg.sync.build().label();
                let (r, rec) =
                    run_sharded_optimistic_impl(programs, &pcfg, shards, opts, rec, seed.as_ref())?;
                let report = RunReport {
                    engine,
                    sync_label,
                    n_nodes: r.per_node.len(),
                    sim_end: r.sim_end,
                    total_packets: r.total_packets,
                    messages_received: r.messages_received_total(),
                    stragglers: r.stragglers,
                    total_quanta: r.windows,
                    wall_clock: WallClock::Real(r.wall),
                    detail: EngineDetail::ShardedOptimistic(Box::new(r)),
                    obs: None,
                };
                (report, rec)
            }
            EngineKind::Optimistic => {
                debug_assert!(
                    matches!(switch, SimSwitch::Perfect),
                    "rejected by Sim::validate before dispatch"
                );
                if resume.is_some() {
                    return Err(SimError::SnapshotUnsupported {
                        engine: EngineKind::Optimistic,
                    });
                }
                let ocfg = OptimisticConfig {
                    base: config,
                    window,
                    checkpoint_cost,
                    rollback_cost,
                    gvt_cost,
                    max_iterations,
                    max_windows: max_quanta,
                };
                let (r, rec) = run_optimistic_impl(programs, &ocfg, rec)?;
                let messages = r.per_node.iter().map(|p| p.messages_received).sum();
                let report = RunReport {
                    engine,
                    sync_label: "optimistic".to_string(),
                    n_nodes: r.per_node.len(),
                    sim_end: r.sim_end,
                    total_packets: r.total_packets,
                    messages_received: messages,
                    stragglers: StragglerStats::default(),
                    total_quanta: r.windows,
                    wall_clock: WallClock::Modelled(r.host_elapsed),
                    detail: EngineDetail::Optimistic(r),
                    obs: None,
                };
                (report, rec)
            }
        })
    }

    /// The spec fingerprint stamped into snapshots and compared at
    /// [`Sim::resume`]: a hash of everything that defines the *simulated
    /// world* — programs, base config, switch, host-work factor, quantum
    /// cap, and chaos plan. The engine choice, shard count, and
    /// optimistic-engine tuning knobs are deliberately excluded so a
    /// snapshot captured once resumes on any supporting engine.
    pub fn fingerprint(&self) -> u64 {
        let mut spec = String::from("aqs-spec-v1");
        for part in [
            format!("{:?}", self.programs),
            format!("{:?}", self.config),
            format!("{:?}", self.switch),
            format!("{:?}", self.host_work_per_op),
            format!("{:?}", self.max_quanta),
            format!("{:?}", self.chaos),
        ] {
            spec.push('\x1f');
            spec.push_str(&part);
        }
        crate::snapshot::fnv1a(spec.as_bytes())
    }

    /// Captures a snapshot of this simulation's state at the edge of
    /// completed quantum `quantum` (so `1` is the earliest capturable cut).
    ///
    /// The capture run executes the deterministic engine on a clone of this
    /// builder; at a quantum edge every engine agrees on the simulated
    /// state, so the snapshot resumes on any engine that supports it. The
    /// builder itself is untouched — capture is a read-only probe.
    ///
    /// # Errors
    ///
    /// Everything [`Sim::try_run`] rejects, plus
    /// [`SimError::SnapshotUnsupported`] for the optimistic engine (it has
    /// no quantum edges) and [`SimError::SnapshotQuantumUnreachable`] when
    /// the run finishes before `quantum` quanta complete.
    pub fn snapshot_at(&self, quantum: u64) -> Result<SimSnapshot, SimError> {
        self.validate()?;
        if self.engine == EngineKind::Optimistic {
            return Err(SimError::SnapshotUnsupported {
                engine: EngineKind::Optimistic,
            });
        }
        let fingerprint = self.fingerprint();
        let probe = self.clone();
        let overlay = probe
            .chaos
            .map(|c| ChaosOverlay::new(c).expect("chaos validated above"));
        match run_det(
            probe.programs,
            &probe.config,
            probe.switch,
            overlay,
            NullRecorder,
            None,
            Some(quantum),
        )? {
            DetOutcome::Captured(mut body) => {
                body.fingerprint = fingerprint;
                Ok(SimSnapshot { body: *body })
            }
            DetOutcome::Finished(r, _) => Err(SimError::SnapshotQuantumUnreachable {
                requested: quantum,
                completed: r.total_quanta,
            }),
        }
    }

    /// Resumes this simulation from `snapshot` on the configured engine and
    /// runs it to completion.
    ///
    /// The report is bit-identical in its [`RunReport::simulated_outcome`]
    /// to an uninterrupted run of the same builder; counters that describe
    /// the whole run (packets, quanta, stragglers) continue from the
    /// snapshot, while recorded traces ([`Sim::record`]) cover only the
    /// resumed suffix.
    ///
    /// # Errors
    ///
    /// Everything [`Sim::try_run`] rejects, plus
    /// [`SimError::SnapshotSpecMismatch`] when the snapshot's fingerprint
    /// is not this builder's [`Sim::fingerprint`], and
    /// [`SimError::SnapshotUnsupported`] for the optimistic engine.
    pub fn resume(&self, snapshot: &SimSnapshot) -> Result<RunReport, SimError> {
        self.validate()?;
        if self.engine == EngineKind::Optimistic {
            return Err(SimError::SnapshotUnsupported {
                engine: EngineKind::Optimistic,
            });
        }
        let expected = self.fingerprint();
        if snapshot.body.fingerprint != expected {
            return Err(SimError::SnapshotSpecMismatch {
                snapshot: snapshot.body.fingerprint,
                sim: expected,
            });
        }
        self.clone().run_with(Some(&snapshot.body))
    }

    /// Advances the simulation by at most `quanta` more quanta on the
    /// deterministic engine, starting from `from` (or from time zero), and
    /// returns either the next snapshot or the finished report.
    ///
    /// This is the checkpointed-execution primitive the resident job server
    /// builds on: run a chunk, persist the returned snapshot, repeat — a
    /// crash loses at most one chunk of work.
    ///
    /// # Errors
    ///
    /// Everything [`Sim::resume`] rejects; `quanta` of zero is a
    /// [`SimError::SnapshotFormat`] configuration error.
    pub fn step_snapshot(
        &self,
        from: Option<&SimSnapshot>,
        quanta: u64,
    ) -> Result<SnapshotStep, SimError> {
        self.validate()?;
        if quanta == 0 {
            return Err(SimError::snapshot_format(
                "step_snapshot needs a positive quantum budget",
            ));
        }
        let fingerprint = self.fingerprint();
        if let Some(s) = from {
            if s.body.fingerprint != fingerprint {
                return Err(SimError::SnapshotSpecMismatch {
                    snapshot: s.body.fingerprint,
                    sim: fingerprint,
                });
            }
        }
        let capture_at = from.map_or(0, |s| s.body.quanta) + quanta;
        let probe = self.clone();
        let overlay = probe
            .chaos
            .map(|c| ChaosOverlay::new(c).expect("chaos validated above"));
        match run_det(
            probe.programs,
            &probe.config,
            probe.switch,
            overlay,
            NullRecorder,
            from.map(|s| &s.body),
            Some(capture_at),
        )? {
            DetOutcome::Captured(mut body) => {
                body.fingerprint = fingerprint;
                Ok(SnapshotStep::Snapshot(SimSnapshot { body: *body }))
            }
            DetOutcome::Finished(r, _) => Ok(SnapshotStep::Finished(Box::new(det_report(*r)))),
        }
    }
}

/// What one [`Sim::step_snapshot`] chunk produced.
#[derive(Debug)]
pub enum SnapshotStep {
    /// The chunk's quantum budget ran out at this cut; persist and continue.
    Snapshot(SimSnapshot),
    /// The run finished inside the chunk.
    Finished(Box<RunReport>),
}

/// The deterministic engine's switch/overlay dispatch: instantiates the
/// statically-typed switch model and hands everything to
/// [`run_cluster_det`].
fn run_det<R: Recorder>(
    programs: Vec<Program>,
    config: &ClusterConfig,
    switch: SimSwitch,
    overlay: Option<ChaosOverlay>,
    rec: R,
    resume: Option<&SnapshotBody>,
    capture_at: Option<u64>,
) -> Result<DetOutcome<R>, SimError> {
    let n = programs.len();
    match (switch, overlay) {
        (SimSwitch::Perfect, None) => run_cluster_det(
            programs,
            config,
            PerfectSwitch::new(),
            rec,
            resume,
            capture_at,
        ),
        (SimSwitch::Perfect, Some(o)) => {
            let sw = ChaosSwitch::new(o, PerfectSwitch::new());
            run_cluster_det(programs, config, sw, rec, resume, capture_at)
        }
        (SimSwitch::LatencyMatrix(m), None) => {
            run_cluster_det(programs, config, m, rec, resume, capture_at)
        }
        (SimSwitch::LatencyMatrix(m), Some(o)) => run_cluster_det(
            programs,
            config,
            ChaosSwitch::new(o, m),
            rec,
            resume,
            capture_at,
        ),
        (SimSwitch::StoreAndForward(s), None) => {
            run_cluster_det(programs, config, s, rec, resume, capture_at)
        }
        (SimSwitch::StoreAndForward(s), Some(o)) => run_cluster_det(
            programs,
            config,
            ChaosSwitch::new(o, s),
            rec,
            resume,
            capture_at,
        ),
        (SimSwitch::Fabric(cfg), o) => {
            let fabric = FatTreeFabric::new(cfg, n);
            match o {
                None => run_cluster_det(programs, config, fabric, rec, resume, capture_at),
                Some(o) => {
                    let sw = ChaosSwitch::new(o, fabric);
                    run_cluster_det(programs, config, sw, rec, resume, capture_at)
                }
            }
        }
    }
}

/// Folds a deterministic-engine [`RunResult`] into the unified report.
fn det_report(r: RunResult) -> RunReport {
    let messages = r.per_node.iter().map(|p| p.messages_received).sum();
    RunReport {
        engine: EngineKind::Deterministic,
        sync_label: r.sync_label.clone(),
        n_nodes: r.n_nodes,
        sim_end: r.sim_end,
        total_packets: r.total_packets,
        messages_received: messages,
        stragglers: r.stragglers,
        total_quanta: r.total_quanta,
        wall_clock: WallClock::Modelled(r.host_elapsed),
        detail: EngineDetail::Deterministic(Box::new(r)),
        obs: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqs_workloads::{burst, ping_pong};

    #[test]
    fn four_engines_one_builder_agree_under_safe_quantum() {
        let spec = burst(4, 50_000, 1024);
        let mk = |engine| {
            Sim::new(spec.programs.clone())
                .engine(engine)
                .sync(SyncConfig::ground_truth())
                .window(SimDuration::from_micros(20))
                .optimistic_costs(HostDuration::ZERO, HostDuration::ZERO)
                .shards(2)
                .run()
        };
        let det = mk(EngineKind::Deterministic);
        let thr = mk(EngineKind::Threaded);
        let opt = mk(EngineKind::Optimistic);
        let shd = mk(EngineKind::Sharded);
        assert_eq!(det.simulated_outcome(), thr.simulated_outcome());
        assert_eq!(det.simulated_outcome(), opt.simulated_outcome());
        assert_eq!(det.simulated_outcome(), shd.simulated_outcome());
        assert_eq!(shd.engine.name(), "sharded");
        assert_eq!(shd.detail.as_sharded().expect("sharded detail").workers, 2);
        assert!(matches!(shd.wall_clock, WallClock::Real(_)));
        assert_eq!(det.engine.name(), "deterministic");
        assert!(matches!(det.wall_clock, WallClock::Modelled(_)));
        assert!(matches!(thr.wall_clock, WallClock::Real(_)));
        assert!(det.detail.as_deterministic().is_some());
        assert!(det.detail.as_threaded().is_none());
    }

    #[test]
    fn recording_is_invisible_to_the_simulation() {
        let spec = ping_pong(2, 5, 64);
        let mk = || {
            Sim::new(spec.programs.clone())
                .engine(EngineKind::Deterministic)
                .sync(SyncConfig::paper_dyn1())
        };
        let plain = mk().run();
        let recorded = mk().record(ObsConfig::new()).run();
        assert_eq!(plain.simulated_outcome(), recorded.simulated_outcome());
        assert!(plain.obs.is_none());
        let fr = recorded.obs.expect("recorder attached");
        assert_eq!(fr.total_packets(), recorded.total_packets);
    }

    #[test]
    fn speedup_guards_zero_baseline() {
        let spec = ping_pong(2, 1, 64);
        let mut a = Sim::new(spec.programs.clone()).run();
        let b = Sim::new(spec.programs).run();
        assert!(b.speedup_vs(&a) > 0.0);
        a.wall_clock = WallClock::Modelled(HostDuration::ZERO);
        assert_eq!(b.speedup_vs(&a), 0.0, "zero baseline must not divide");
    }

    #[test]
    fn chaos_is_bit_identical_across_engines_and_worker_counts() {
        let spec = burst(4, 20_000, 4096);
        let chaos = ChaosConfig::new(42)
            .with_link_flap(0.1)
            .with_loss(0.2, SimDuration::from_micros(150))
            .with_jitter(SimDuration::from_micros(3));
        let mk = |engine, shards| {
            let mut sim = Sim::new(spec.programs.clone())
                .engine(engine)
                .sync(SyncConfig::ground_truth())
                .chaos(chaos);
            if let Some(m) = shards {
                sim = sim.shards(m);
            }
            sim.run().simulated_outcome()
        };
        let det = mk(EngineKind::Deterministic, None);
        assert_eq!(det, mk(EngineKind::Threaded, None));
        for m in [1, 2, 4] {
            assert_eq!(det, mk(EngineKind::Sharded, Some(m)), "sharded m={m}");
        }
        // Chaos must actually perturb the run, not silently no-op.
        let clean = Sim::new(spec.programs.clone())
            .sync(SyncConfig::ground_truth())
            .run()
            .simulated_outcome();
        assert!(det.sim_end > clean.sim_end, "faults must delay completion");
        assert_eq!(det.messages_received, clean.messages_received);
    }

    #[test]
    fn optimistic_rejects_chaos() {
        let spec = ping_pong(2, 1, 64);
        let err = Sim::new(spec.programs)
            .engine(EngineKind::Optimistic)
            .chaos(ChaosConfig::new(1).with_jitter(SimDuration::from_micros(1)))
            .try_run()
            .unwrap_err();
        assert_eq!(
            err,
            SimError::UnsupportedChaos {
                engine: EngineKind::Optimistic
            }
        );
    }

    #[test]
    fn invalid_chaos_is_a_typed_error() {
        let spec = ping_pong(2, 1, 64);
        let err = Sim::new(spec.programs)
            .chaos(ChaosConfig::new(1).with_link_flap(2.0))
            .try_run()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidChaos(_)), "got {err:?}");
    }

    #[test]
    #[should_panic(expected = "does not support the StoreAndForward switch")]
    fn threaded_rejects_stateful_switch() {
        let spec = ping_pong(2, 1, 64);
        let _ = Sim::new(spec.programs)
            .engine(EngineKind::Threaded)
            .switch(SimSwitch::StoreAndForward(StoreAndForwardSwitch::new(
                SimDuration::ZERO,
                1_000_000_000,
            )))
            .run();
    }

    /// Strong equality for the deterministic engine: every field an
    /// uninterrupted run and a resumed run must agree on (recorded quantum
    /// traces are suffix-only on resume and deliberately excluded).
    fn det_strong(report: &RunReport) -> (SimulatedOutcome, u64, WallClock) {
        (
            report.simulated_outcome(),
            report.total_quanta,
            report.wall_clock,
        )
    }

    #[test]
    fn det_resume_is_bit_identical_under_an_adaptive_policy() {
        let spec = burst(4, 20_000, 1024);
        let sim = Sim::new(spec.programs.clone()).sync(SyncConfig::paper_dyn1());
        let full = sim.clone().run();
        assert!(full.total_quanta > 4, "need a mid-run cut");
        for cut in [1, full.total_quanta / 2, full.total_quanta - 1] {
            let snap = sim.snapshot_at(cut).expect("capturable cut");
            assert_eq!(snap.quanta(), cut);
            let resumed = sim.resume(&snap).expect("resume succeeds");
            assert_eq!(det_strong(&resumed), det_strong(&full), "cut={cut}");
        }
    }

    #[test]
    fn det_resume_survives_a_serialization_round_trip() {
        let spec = ping_pong(3, 10, 4096);
        let sim = Sim::new(spec.programs.clone()).sync(SyncConfig::paper_dyn2());
        let full = sim.clone().run();
        let snap = sim.snapshot_at(2).expect("capturable cut");
        let bytes = snap.to_bytes();
        let back = SimSnapshot::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, snap);
        let resumed = sim.resume(&back).expect("resume succeeds");
        assert_eq!(det_strong(&resumed), det_strong(&full));
    }

    #[test]
    fn every_parallel_engine_resumes_bit_identically_under_ground_truth() {
        let spec = burst(5, 2_000, 1024);
        let base = Sim::new(spec.programs.clone()).sync(SyncConfig::ground_truth());
        let full_det = base.clone().run();
        let snap = base
            .snapshot_at(full_det.total_quanta / 2)
            .expect("capturable cut");
        for kind in [
            EngineKind::Threaded,
            EngineKind::Sharded,
            EngineKind::ShardedOptimistic,
            EngineKind::Hybrid,
        ] {
            for m in [1, 2, 5] {
                if kind == EngineKind::Threaded && m != 1 {
                    continue; // the threaded engine has no shard knob
                }
                let mut sim = base.clone().engine(kind);
                if kind != EngineKind::Threaded {
                    sim = sim.shards(m);
                }
                let full = sim.clone().run();
                let resumed = sim.resume(&snap).expect("resume succeeds");
                assert_eq!(
                    resumed.simulated_outcome(),
                    full.simulated_outcome(),
                    "kind={kind:?} m={m}"
                );
                assert_eq!(
                    resumed.simulated_outcome(),
                    full_det.simulated_outcome(),
                    "kind={kind:?} m={m} vs det"
                );
                assert_eq!(resumed.total_quanta, full.total_quanta);
            }
        }
    }

    #[test]
    fn step_snapshot_chunks_reach_the_uninterrupted_outcome() {
        let spec = ping_pong(2, 20, 2048);
        let sim = Sim::new(spec.programs.clone()).sync(SyncConfig::paper_dyn1());
        let full = sim.clone().run();
        let mut cursor: Option<SimSnapshot> = None;
        let mut chunks = 0u32;
        let finished = loop {
            match sim.step_snapshot(cursor.as_ref(), 3).expect("step") {
                SnapshotStep::Snapshot(s) => {
                    assert!(s.quanta() > cursor.as_ref().map_or(0, |c| c.quanta()));
                    cursor = Some(s);
                    chunks += 1;
                    assert!(chunks < 10_000, "runaway chunk loop");
                }
                SnapshotStep::Finished(report) => break report,
            }
        };
        assert!(chunks > 1, "the workload must span several chunks");
        assert_eq!(det_strong(&finished), det_strong(&full));
    }

    #[test]
    fn engine_failure_modes_are_typed_errors_not_panics() {
        use aqs_node::{ProgramBuilder, Rank, Tag};
        // Rank 0 waits for a message rank 1 never sends.
        let starved = ProgramBuilder::new(Rank::new(0))
            .recv(Some(Rank::new(1)), Tag::new(0))
            .build();
        let silent = ProgramBuilder::new(Rank::new(1)).compute(10).build();
        let programs = vec![starved, silent];
        // The deterministic engine proves the deadlock and names the nodes.
        let err = Sim::new(programs.clone())
            .sync(SyncConfig::fixed_micros(10))
            .try_run()
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "got {err:?}");
        // The parallel engines hit their quantum cap instead.
        for kind in [
            EngineKind::Threaded,
            EngineKind::Sharded,
            EngineKind::ShardedOptimistic,
            EngineKind::Hybrid,
        ] {
            let err = Sim::new(programs.clone())
                .engine(kind)
                .sync(SyncConfig::ground_truth())
                .max_quanta(50)
                .shards(2)
                .try_run()
                .unwrap_err();
            assert_eq!(
                err,
                SimError::QuantumCapExceeded {
                    engine: kind,
                    max_quanta: 50,
                },
                "kind={kind:?}"
            );
        }
    }

    #[test]
    fn snapshot_errors_are_typed() {
        let spec = ping_pong(2, 2, 64);
        let sim = Sim::new(spec.programs.clone()).sync(SyncConfig::ground_truth());
        let completed = sim.clone().run().total_quanta;
        let err = sim.snapshot_at(completed + 10).unwrap_err();
        assert_eq!(
            err,
            SimError::SnapshotQuantumUnreachable {
                requested: completed + 10,
                completed,
            }
        );
        // A snapshot from a different spec is rejected by fingerprint.
        let snap = sim.snapshot_at(1).expect("capturable cut");
        let other = Sim::new(spec.programs.clone()).sync(SyncConfig::fixed_micros(7));
        let err = other.resume(&snap).unwrap_err();
        assert!(
            matches!(err, SimError::SnapshotSpecMismatch { .. }),
            "got {err:?}"
        );
        // The optimistic engine has no quantum edges to cut at.
        let opt = sim.clone().engine(EngineKind::Optimistic);
        assert_eq!(
            opt.snapshot_at(1).unwrap_err(),
            SimError::SnapshotUnsupported {
                engine: EngineKind::Optimistic
            }
        );
        assert_eq!(
            opt.resume(&snap).unwrap_err(),
            SimError::SnapshotUnsupported {
                engine: EngineKind::Optimistic
            }
        );
    }
}
