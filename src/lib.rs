//! # aqs — Adaptive Quantum Synchronization for cluster simulation
//!
//! A production-grade reproduction of *"An Adaptive Synchronization
//! Technique for Parallel Simulation of Networked Clusters"* (Falcón,
//! Faraboschi, Ortega — ISPASS 2008).
//!
//! The paper turns N per-node full-system simulators into one cluster
//! simulator by routing their NIC traffic through a central network
//! controller and synchronizing their simulated clocks in quanta. Its core
//! contribution — implemented verbatim in [`core::AdaptiveQuantum`] — is a
//! quantum that *adapts* to traffic: grow slowly while the network is
//! quiet, collapse to the safe bound the moment packets appear.
//!
//! This crate is a facade re-exporting the workspace's sub-crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`time`] | `aqs-time` | simulated/host time newtypes |
//! | [`rng`] | `aqs-rng` | deterministic PRNG (xoshiro256**) |
//! | [`des`] | `aqs-des` | discrete-event kernel |
//! | [`net`] | `aqs-net` | NIC/switch models, network controller |
//! | [`node`] | `aqs-node` | node programs, executor, host-cost model |
//! | [`core`] | `aqs-core` | **the synchronization policies** |
//! | [`workloads`] | `aqs-workloads` | NAS/NAMD-like benchmarks, MPI builder |
//! | [`cluster`] | `aqs-cluster` | the cluster simulation engines |
//! | [`sync`] | `aqs-sync` | lock-free primitives for the threaded engine |
//! | [`metrics`] | `aqs-metrics` | statistics, Pareto fronts, rendering |
//!
//! # Quick start
//!
//! Run the paper's burst scenario under the ground truth and the adaptive
//! policy, and compare:
//!
//! ```
//! use aqs::cluster::{run_workload, ClusterConfig};
//! use aqs::core::SyncConfig;
//! use aqs::workloads::burst;
//!
//! let spec = burst(4, 500_000, 2048);
//! let base = ClusterConfig::new(SyncConfig::ground_truth()).with_seed(1);
//! let truth = run_workload(&spec, &base);
//! let adaptive = run_workload(&spec, &base.clone().with_sync(SyncConfig::paper_dyn1()));
//! assert!(adaptive.host_elapsed < truth.host_elapsed, "adaptive must be faster");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aqs_check as check;
pub use aqs_cluster as cluster;
pub use aqs_core as core;
pub use aqs_des as des;
pub use aqs_metrics as metrics;
pub use aqs_net as net;
pub use aqs_node as node;
pub use aqs_obs as obs;
pub use aqs_rng as rng;
pub use aqs_scenario as scenario;
pub use aqs_serve as serve;
pub use aqs_sync as sync;
pub use aqs_time as time;
pub use aqs_workloads as workloads;
