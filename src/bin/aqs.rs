//! `aqs` — command-line front end to the cluster simulator.
//!
//! ```text
//! aqs run   --workload cg --nodes 8 --policy dyn1 [--seed N] [--scale tiny|mini|full]
//! aqs sweep --workload is --nodes 8 [--seed N] [--scale …]    # the paper's 5-config sweep
//! aqs optimistic --workload cg --nodes 4 [--window-us W]      # checkpoint/rollback engine
//! aqs export-spec --workload is --nodes 8 --out spec.json     # dump a workload as JSON
//! aqs run-spec --file spec.json [--policy p] [--seed N]       # run a JSON workload
//! aqs check [--cases N] [--seed S] [--engines …]               # conformance campaign
//! aqs scenario run <file.toml>                                # multi-phase scenario + chaos
//! aqs serve [--addr A] [--journal F] [--workers N]            # resident job server
//! aqs submit --addr A --workload cg … [--wait 1]              # enqueue a job
//! aqs job <status|wait|list|stats|shutdown> [--addr A] [--id N]
//! aqs policies                                                # list built-in policies
//! ```

use aqs::cluster::{
    app_metric, paper_sweep, run_workload, ClusterConfig, EngineKind, Experiment, Sim,
};
use aqs::core::{PredictiveConfig, SyncConfig};
use aqs::metrics::render_table;
use aqs::time::SimDuration;
use aqs::workloads::{Scale, Workload, WorkloadSpec};
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         aqs run   --workload <ep|is|cg|mg|lu|ft|namd|pingpong> --nodes <n> --policy <p> \
         [--seed N] [--scale tiny|mini|full]\n  \
         aqs sweep --workload <…> --nodes <n> [--seed N] [--scale …]\n  \
         aqs optimistic --workload <…> --nodes <n> [--window-us W] [--seed N] [--scale …]\n  \
         aqs export-spec --workload <…> --nodes <n> --out <file> [--scale …]\n  \
         aqs run-spec --file <file> [--policy <p>] [--seed N]\n  \
         aqs check {}\n  \
         aqs scenario run <file.toml>\n  \
         aqs serve [--addr <host:port>] [--journal <file>] [--workers N] [--queue-cap N] \
         [--tenant-cap N] [--deadline-ms N] [--max-attempts N] [--chunk-quanta N]\n  \
         aqs submit --addr <host:port> (--workload <…> | --scenario <file.toml>) \
         [--nodes N] [--policy <p>] [--seed N] [--scale …] [--tenant T] [--deadline-ms N] \
         [--wait 1]\n  \
         aqs job <status|wait|list|stats|shutdown> [--addr <host:port>] [--id N]\n  \
         aqs policies\n\n\
         policies: truth | fixed:<µs> | dyn1 | dyn2 | dyn:<min_µs>:<max_µs>:<inc>:<dec> | pred",
        aqs::check::cli::USAGE
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument: {a}");
            usage();
        };
        let Some(value) = it.next() else {
            eprintln!("flag --{key} needs a value");
            usage();
        };
        flags.insert(key.to_string(), value.clone());
    }
    flags
}

fn parse_scale(flags: &HashMap<String, String>) -> Scale {
    match flags.get("scale").map(String::as_str) {
        None | Some("mini") => Scale::Mini,
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        Some(other) => {
            eprintln!("unknown scale: {other}");
            usage();
        }
    }
}

fn parse_workload(
    flags: &HashMap<String, String>,
    n: usize,
    scale: Scale,
    seed: u64,
) -> WorkloadSpec {
    let Some(name) = flags.get("workload") else {
        eprintln!("--workload is required");
        usage();
    };
    let Some(workload) = Workload::parse(name) else {
        eprintln!("unknown workload: {name}");
        usage();
    };
    workload.with_scale(scale).build(n, seed)
}

fn parse_policy(spec: &str) -> SyncConfig {
    match spec {
        "truth" => SyncConfig::ground_truth(),
        "dyn1" => SyncConfig::paper_dyn1(),
        "dyn2" => SyncConfig::paper_dyn2(),
        "pred" => SyncConfig::Predictive(PredictiveConfig::default_1_1000()),
        other => {
            let parts: Vec<&str> = other.split(':').collect();
            match parts.as_slice() {
                ["fixed", us] => {
                    let us: u64 = us.parse().unwrap_or_else(|_| usage());
                    SyncConfig::fixed_micros(us)
                }
                ["dyn", min, max, inc, dec] => {
                    let min: u64 = min.parse().unwrap_or_else(|_| usage());
                    let max: u64 = max.parse().unwrap_or_else(|_| usage());
                    let inc: f64 = inc.parse().unwrap_or_else(|_| usage());
                    let dec: f64 = dec.parse().unwrap_or_else(|_| usage());
                    SyncConfig::Adaptive(aqs::core::AdaptiveConfig::new(
                        SimDuration::from_micros(min),
                        SimDuration::from_micros(max),
                        inc,
                        dec,
                    ))
                }
                _ => {
                    eprintln!("unknown policy: {other}");
                    usage();
                }
            }
        }
    }
}

fn nodes_and_seed(flags: &HashMap<String, String>) -> (usize, u64) {
    let n: usize = flags
        .get("nodes")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(8);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(42);
    (n, seed)
}

fn cmd_run(flags: HashMap<String, String>) {
    let (n, seed) = nodes_and_seed(&flags);
    let scale = parse_scale(&flags);
    let spec = parse_workload(&flags, n, scale, seed);
    let policy = parse_policy(flags.get("policy").map(String::as_str).unwrap_or("dyn1"));
    let base = ClusterConfig::new(SyncConfig::ground_truth()).with_seed(seed);
    let truth = run_workload(&spec, &base);
    let run = run_workload(&spec, &base.clone().with_sync(policy));
    let m = app_metric(&run, spec.metric);
    let m0 = app_metric(&truth, spec.metric);
    println!("{} on {n} nodes, policy {}", spec.name, run.sync_label);
    println!("  simulated time : {}", run.sim_end);
    println!(
        "  host time      : {}  ({:.1}x vs 1µs ground truth)",
        run.host_elapsed,
        run.speedup_vs(&truth)
    );
    println!(
        "  metric         : {m}  (truth {m0}, error {:.2}%)",
        m.error_vs(&m0) * 100.0
    );
    println!(
        "  quanta         : {}   stragglers: {} (total delay {})",
        run.total_quanta,
        run.stragglers.count(),
        run.stragglers.total_delay()
    );
}

fn cmd_sweep(flags: HashMap<String, String>) {
    let (n, seed) = nodes_and_seed(&flags);
    let scale = parse_scale(&flags);
    let spec = parse_workload(&flags, n, scale, seed);
    let base = ClusterConfig::new(SyncConfig::ground_truth()).with_seed(seed);
    let result = Experiment::new(spec, base, paper_sweep()).run();
    println!(
        "{} on {n} nodes — ground truth {} in {}",
        result.name, result.baseline_metric, result.baseline.host_elapsed
    );
    let rows: Vec<Vec<String>> = result
        .outcomes
        .iter()
        .map(|o| {
            vec![
                o.label.clone(),
                format!("{:.1}x", o.speedup),
                format!("{:.2}%", o.accuracy_error * 100.0),
                format!("{}", o.result.stragglers.count()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["config", "speedup", "error", "stragglers"], &rows)
    );
}

fn cmd_optimistic(flags: HashMap<String, String>) {
    let (n, seed) = nodes_and_seed(&flags);
    let scale = parse_scale(&flags);
    let spec = parse_workload(&flags, n, scale, seed);
    let window: u64 = flags
        .get("window-us")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(500);
    let base = ClusterConfig::new(SyncConfig::ground_truth()).with_seed(seed);
    let truth = run_workload(&spec, &base);
    let report = Sim::new(spec.programs.clone())
        .engine(EngineKind::Optimistic)
        .config(base)
        .window(SimDuration::from_micros(window))
        .run();
    let r = report
        .detail
        .as_optimistic()
        .expect("optimistic engine ran");
    println!(
        "{} on {n} nodes, optimistic engine (window {}µs)",
        spec.name, window
    );
    println!(
        "  simulated time : {} (exact: matches ground truth {})",
        r.sim_end, truth.sim_end
    );
    println!(
        "  host time      : {} with the paper's 30s checkpoints",
        r.host_elapsed
    );
    println!(
        "  windows        : {}   checkpoints: {}   rollbacks: {}   wasted sim: {}",
        r.windows, r.checkpoints, r.rollbacks, r.wasted_sim
    );
    println!(
        "  vs ground truth: {:.3}x",
        truth.host_elapsed.as_secs_f64() / r.host_elapsed.as_secs_f64()
    );
}

fn cmd_export_spec(flags: HashMap<String, String>) {
    let (n, seed) = nodes_and_seed(&flags);
    let scale = parse_scale(&flags);
    let spec = parse_workload(&flags, n, scale, seed);
    let Some(out) = flags.get("out") else {
        eprintln!("--out <file> is required");
        usage();
    };
    let json = serde_json::to_string_pretty(&spec).expect("spec serializes");
    std::fs::write(out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!(
        "wrote {} ({} ranks, {} ops)",
        out,
        spec.n_ranks(),
        spec.total_ops()
    );
}

fn cmd_run_spec(flags: HashMap<String, String>) {
    let Some(file) = flags.get("file") else {
        eprintln!("--file <file> is required");
        usage();
    };
    let json = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        exit(1);
    });
    let spec: WorkloadSpec = serde_json::from_str(&json).unwrap_or_else(|e| {
        eprintln!("invalid workload spec: {e}");
        exit(1);
    });
    let (_, seed) = nodes_and_seed(&flags);
    let policy = parse_policy(flags.get("policy").map(String::as_str).unwrap_or("dyn1"));
    let base = ClusterConfig::new(SyncConfig::ground_truth()).with_seed(seed);
    let truth = run_workload(&spec, &base);
    let run = run_workload(&spec, &base.clone().with_sync(policy));
    let m = app_metric(&run, spec.metric);
    let m0 = app_metric(&truth, spec.metric);
    println!(
        "{} ({} ranks) from {file}, policy {}",
        spec.name,
        spec.n_ranks(),
        run.sync_label
    );
    println!(
        "  host time : {} ({:.1}x vs ground truth)",
        run.host_elapsed,
        run.speedup_vs(&truth)
    );
    println!(
        "  metric    : {m} (truth {m0}, error {:.2}%)",
        m.error_vs(&m0) * 100.0
    );
}

/// `aqs scenario run <file.toml>` — executes a declarative multi-phase
/// scenario (with optional chaos injection) on every engine × worker-count
/// combination it configures, and checks its property assertions. Exits 1
/// with the typed error's file/line context on a bad scenario, 2 on usage.
fn cmd_scenario(rest: &[String]) {
    let (sub, file) = match rest {
        [sub, file] => (sub.as_str(), file.as_str()),
        _ => {
            eprintln!("usage: aqs scenario run <file.toml>");
            exit(2);
        }
    };
    if sub != "run" {
        eprintln!("unknown scenario subcommand `{sub}` (expected `run`)");
        exit(2);
    }
    let report = match aqs::scenario::run_scenario_file(file) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };
    println!(
        "scenario {} — {} nodes, {} phase(s){}",
        report.name,
        report.nodes,
        report.phases,
        if report.chaos { ", chaos on" } else { "" }
    );
    println!(
        "  outcome : sim_end {}  messages {}  packets {}  stragglers {}",
        report.outcome.sim_end,
        report.outcome.messages_received,
        report.outcome.total_packets,
        report.outcome.straggler_count
    );
    for run in &report.runs {
        println!(
            "  run     : {:<16} quanta {:>8}  wall {:.3}s",
            run.label,
            run.report.total_quanta,
            run.report.wall_clock.as_secs_f64()
        );
    }
    for check in &report.checks {
        println!("  check   : {check}");
    }
    println!("  PASS");
}

/// Default server address shared by `serve`, `submit`, and `job`.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7077";

fn flag_u64(flags: &HashMap<String, String>, key: &str) -> Option<u64> {
    flags
        .get(key)
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
}

/// `aqs serve` — run the resident job server until a `shutdown` request.
fn cmd_serve(flags: HashMap<String, String>) {
    let mut cfg = aqs::serve::ServeConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_string()),
        ..Default::default()
    };
    if let Some(journal) = flags.get("journal") {
        cfg.journal = journal.into();
    }
    if let Some(n) = flag_u64(&flags, "workers") {
        cfg.workers = n as usize;
    }
    if let Some(n) = flag_u64(&flags, "queue-cap") {
        cfg.queue_cap = n as usize;
    }
    if let Some(n) = flag_u64(&flags, "tenant-cap") {
        cfg.tenant_cap = n as usize;
    }
    if let Some(n) = flag_u64(&flags, "deadline-ms") {
        cfg.default_deadline_ms = n;
    }
    if let Some(n) = flag_u64(&flags, "max-attempts") {
        cfg.max_attempts = n as u32;
    }
    if let Some(n) = flag_u64(&flags, "chunk-quanta") {
        cfg.chunk_quanta = n;
    }
    let journal = cfg.journal.clone();
    let server = aqs::serve::Server::start(cfg).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        exit(1);
    });
    println!(
        "serving on {} (journal {})",
        server.addr(),
        journal.display()
    );
    server.join();
    println!("server stopped");
}

fn serve_request(addr: &str, req: &serde_json::Value) -> serde_json::Value {
    aqs::serve::client::request(addr, req).unwrap_or_else(|e| {
        eprintln!("cannot reach server at {addr}: {e}");
        exit(1);
    })
}

/// Prints a protocol response and exits 1 on a typed rejection.
fn print_response(resp: &serde_json::Value) {
    println!(
        "{}",
        serde_json::to_string(resp).expect("response serializes")
    );
    if aqs::serve::protocol::get_bool(resp, "ok") != Some(true) {
        exit(1);
    }
}

/// `aqs submit` — enqueue one job, optionally waiting for its outcome.
fn cmd_submit(flags: HashMap<String, String>) {
    use serde_json::Value;
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_string());
    let mut fields = vec![("op", Value::Str("submit".to_string()))];
    for key in ["workload", "policy", "scale", "tenant", "scenario"] {
        if let Some(v) = flags.get(key) {
            fields.push((key, Value::Str(v.clone())));
        }
    }
    for key in ["nodes", "seed", "deadline_ms"] {
        if let Some(n) = flag_u64(&flags, &key.replace('_', "-")) {
            fields.push((key, Value::U64(n)));
        }
    }
    if flags.contains_key("inject-panic") {
        fields.push(("inject_panic", Value::Bool(true)));
    }
    let resp = serve_request(&addr, &aqs::serve::protocol::obj(fields));
    if flags.contains_key("wait") {
        if let Some(id) = aqs::serve::protocol::get_u64(&resp, "job") {
            let resp = serve_request(
                &addr,
                &aqs::serve::protocol::obj(vec![
                    ("op", Value::Str("wait".to_string())),
                    ("job", Value::U64(id)),
                ]),
            );
            print_response(&resp);
            return;
        }
    }
    print_response(&resp);
}

/// `aqs job <status|wait|list|stats|shutdown>` — query or control the
/// server.
fn cmd_job(rest: &[String]) {
    use serde_json::Value;
    let Some((op, rest)) = rest.split_first() else {
        eprintln!("usage: aqs job <status|wait|list|stats|shutdown> [--addr <host:port>] [--id N]");
        exit(2);
    };
    if !["status", "wait", "list", "stats", "shutdown"].contains(&op.as_str()) {
        eprintln!("unknown job subcommand `{op}`");
        exit(2);
    }
    let flags = parse_flags(rest);
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_string());
    let mut fields = vec![("op", Value::Str(op.clone()))];
    if let Some(id) = flag_u64(&flags, "id") {
        fields.push(("job", Value::U64(id)));
    }
    let resp = serve_request(&addr, &aqs::serve::protocol::obj(fields));
    print_response(&resp);
}

fn cmd_policies() {
    println!("built-in synchronization policies:");
    println!("  truth                          fixed 1µs quantum (safe bound, ground truth)");
    println!("  fixed:<µs>                     fixed quantum, e.g. fixed:100");
    println!("  dyn1                           paper Algorithm 1, 1-1000µs, +3%/x0.02");
    println!("  dyn2                           paper Algorithm 1, 1-1000µs, +5%/x0.02");
    println!("  dyn:<min>:<max>:<inc>:<dec>    custom Algorithm 1, e.g. dyn:1:100:1.03:0.02");
    println!("  pred                           gap-predicting lookahead estimation (extension)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage()
    };
    // `check` has its own flag grammar (boolean flags); dispatch before the
    // key-value parser.
    // `scenario` takes a positional file, not key-value flags.
    if cmd == "scenario" {
        cmd_scenario(rest);
        return;
    }
    // `job` takes a positional subcommand before its flags.
    if cmd == "job" {
        cmd_job(rest);
        return;
    }
    if cmd == "check" {
        match aqs::check::cli::run(rest) {
            Ok(code) => exit(code),
            Err(msg) => {
                eprintln!("{msg}");
                usage();
            }
        }
    }
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "run" => cmd_run(flags),
        "sweep" => cmd_sweep(flags),
        "optimistic" => cmd_optimistic(flags),
        "export-spec" => cmd_export_spec(flags),
        "run-spec" => cmd_run_spec(flags),
        "serve" => cmd_serve(flags),
        "submit" => cmd_submit(flags),
        "policies" => cmd_policies(),
        _ => usage(),
    }
}
