#!/usr/bin/env bash
# Job-server smoke gate — the fault envelope end to end, over real TCP:
#
#   1. a healthy job completes;
#   2. a panicking job is retried, fails typed, and the server survives;
#   3. a job past its deadline fails with a typed deadline error;
#   4. an over-quota burst is shed with typed quota/overload rejections;
#   5. the server is SIGKILLed mid-job and the restarted server resumes
#      the job from its journaled snapshot, bit-identical to an
#      uninterrupted run.
#
# Artifacts (server logs + journal) land in $ARTIFACTS on failure.
#
#   ./scripts/serve_smoke.sh [addr] [artifacts-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=./target/release/aqs
ADDR="${1:-127.0.0.1:17171}"
ARTIFACTS="${2:-serve-smoke-artifacts}"
rm -rf "$ARTIFACTS"
mkdir -p "$ARTIFACTS"
JOURNAL="$ARTIFACTS/serve.journal"
SERVER_PID=""

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    echo "serve_smoke: artifacts kept in $ARTIFACTS" >&2
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    exit 1
}

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

start_server() { # args: log-file, extra flags...
    local log="$1"; shift
    "$BIN" serve --addr "$ADDR" --journal "$JOURNAL" "$@" >"$log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        if "$BIN" job stats --addr "$ADDR" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup (see $log)"
        sleep 0.1
    done
    fail "server at $ADDR never became reachable (see $log)"
}

stop_server() {
    "$BIN" job shutdown --addr "$ADDR" >/dev/null 2>&1 || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}

expect() { # args: description, needle, haystack
    case "$3" in
        *"$2"*) ;;
        *) fail "$1: expected \`$2\` in: $3" ;;
    esac
}

# Pulls the flat `"outcome":{...}` object out of a job record.
outcome_of() {
    printf '%s' "$1" | sed -E 's/.*"outcome":(\{[^}]*\}).*/\1/'
}

echo "==> serve_smoke: fault envelope on $ADDR"
rm -f "$JOURNAL"
start_server "$ARTIFACTS/server-1.log" --workers 2 --tenant-cap 2 --queue-cap 3 --chunk-quanta 20000

# 1. Healthy job.
OUT=$("$BIN" submit --addr "$ADDR" --workload pingpong --nodes 2 --policy dyn1 --seed 7 --wait 1)
expect "healthy job" '"state":"done"' "$OUT"

# 2. Panicking job: retried to the attempt budget, typed failure, server up.
OUT=$("$BIN" submit --addr "$ADDR" --workload pingpong --nodes 2 --inject-panic 1 --wait 1)
expect "panicking job" '"state":"failed"' "$OUT"
expect "panicking job" '"kind":"panicked"' "$OUT"
expect "panicking job" '"attempts":3' "$OUT"

# 3. Deadline job: full-scale ground truth cannot finish in 50 ms.
OUT=$("$BIN" submit --addr "$ADDR" --workload cg --nodes 8 --policy truth \
    --scale full --deadline-ms 50 --wait 1)
expect "deadline job" '"kind":"deadline_exceeded"' "$OUT"

# 4. Over-quota burst: tenant-cap 2, queue-cap 3. Slow jobs hold the queue.
slow_submit() { # args: tenant
    "$BIN" submit --addr "$ADDR" --workload cg --nodes 8 --policy truth \
        --scale full --tenant "$1" --deadline-ms 10000 2>&1 || true
}
slow_submit a >/dev/null
slow_submit a >/dev/null
OUT=$(slow_submit a)
expect "tenant quota" '"kind":"quota_exceeded"' "$OUT"
SHED=""
for t in b c d e f; do
    OUT=$(slow_submit "$t")
    case "$OUT" in
        *'"kind":"overloaded"'*) SHED=yes; break ;;
    esac
done
[ -n "$SHED" ] || fail "burst across tenants was never shed as overloaded"
OUT=$("$BIN" job stats --addr "$ADDR")
expect "server alive after burst" '"ok":true' "$OUT"
stop_server

# 5. Crash recovery: SIGKILL mid-job, restart, resume must finish the job
# bit-identically to an uninterrupted run of the same spec.
rm -f "$JOURNAL"
start_server "$ARTIFACTS/server-2.log" --workers 1 --chunk-quanta 20000
OUT=$("$BIN" submit --addr "$ADDR" --workload cg --nodes 16 --policy truth \
    --scale full --seed 11 --deadline-ms 600000)
expect "crash-test submit" '"ok":true' "$OUT"
JOB=$(printf '%s' "$OUT" | sed -E 's/.*"job":([0-9]+).*/\1/')
# Let a few quantum-edge snapshots reach the journal, then kill -9.
sleep 0.6
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
[ -s "$JOURNAL" ] || fail "journal is empty after SIGKILL"

start_server "$ARTIFACTS/server-3.log" --workers 1 --chunk-quanta 20000
OUT=$("$BIN" job wait --addr "$ADDR" --id "$JOB")
expect "resumed job" '"state":"done"' "$OUT"
RESUMED=$(outcome_of "$OUT")

OUT=$("$BIN" submit --addr "$ADDR" --workload cg --nodes 16 --policy truth \
    --scale full --seed 11 --deadline-ms 600000 --wait 1)
expect "baseline job" '"state":"done"' "$OUT"
BASELINE=$(outcome_of "$OUT")
if [ "$RESUMED" != "$BASELINE" ]; then
    fail "resumed outcome diverged: resumed=$RESUMED baseline=$BASELINE"
fi
stop_server

rm -rf "$ARTIFACTS"
echo "serve_smoke: OK"
