#!/usr/bin/env bash
# Full local verification — the same gates CI runs.
#
#   ./scripts/verify.sh
#
# Benches are built (so they keep compiling) but never timed here.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> conformance harness: mutation + schedule-fuzz tiers"
cargo test -p aqs-check --features fault-inject -q
cargo test -p aqs-check --features schedule-fuzz -q

echo "==> conformance smoke gate: 200 cases x every engine"
cargo run --release -q -p aqs-check --bin conformance -- \
    --cases 200 --seed 0xA5 --time-budget 300 \
    --log conformance.log.jsonl --artifacts conformance-artifacts
rm -f conformance.log.jsonl
rm -rf conformance-artifacts

echo "==> rollback-property smoke gate: 200 cases, sharded-optimistic + hybrid"
cargo run --release -q -p aqs-check --bin conformance -- \
    --cases 200 --seed 0xB0117 --engines sharded-optimistic,hybrid \
    --time-budget 300 \
    --log rollback.log.jsonl --artifacts rollback-artifacts
rm -f rollback.log.jsonl
rm -rf rollback-artifacts

echo "==> scenario gate: corpus with chaos on, bit-identical across engines"
for f in scenarios/*.toml; do
    cargo run --release -q --bin aqs -- scenario run "$f"
done
for f in scenarios/malformed/*.toml; do
    if cargo run --release -q --bin aqs -- scenario run "$f" 2>/dev/null; then
        echo "malformed scenario $f was accepted" >&2
        exit 1
    fi
done

echo "==> job-server smoke gate: panic/deadline/quota envelope + SIGKILL resume"
./scripts/serve_smoke.sh

echo "==> build bench binaries (not timed)"
cargo build --release -p aqs-bench --bins
cargo bench --workspace --no-run

echo "==> shard_scaling smoke sweep (results-match + allocation + 4k-node fabric + hybrid asserts, no timing gate)"
cargo run --release -q -p aqs-bench --bin shard_scaling -- --smoke

echo "==> obs_overhead counter gate (active-set scan + pool allocs vs checked-in baselines)"
cargo run --release -q -p aqs-bench --bin obs_overhead -- --smoke

echo "verify: OK"
