#!/usr/bin/env bash
# Full local verification — the same gates CI runs.
#
#   ./scripts/verify.sh
#
# Benches are built (so they keep compiling) but never timed here.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> build bench binaries (not timed)"
cargo build --release -p aqs-bench --bins
cargo bench --workspace --no-run

echo "verify: OK"
