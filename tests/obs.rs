//! The observability subsystem, observed: recording must be complete (the
//! flight recorder's per-quantum packet counts account for every routed
//! packet on every engine) and invisible (a recorded run and a
//! `NullRecorder` run produce bit-identical simulated results).

use aqs::cluster::{EngineKind, RunReport, Sim};
use aqs::core::SyncConfig;
use aqs::obs::ObsConfig;
use aqs::time::{HostDuration, SimDuration};
use aqs::workloads::{burst, nas, ping_pong, Scale, WorkloadSpec};

const ENGINES: [EngineKind; 3] = [
    EngineKind::Deterministic,
    EngineKind::Threaded,
    EngineKind::Optimistic,
];

fn recorded(spec: &WorkloadSpec, engine: EngineKind, sync: SyncConfig) -> RunReport {
    Sim::new(spec.programs.clone())
        .engine(engine)
        .sync(sync)
        .window(SimDuration::from_micros(30))
        .optimistic_costs(HostDuration::ZERO, HostDuration::ZERO)
        .max_quanta(50_000_000)
        .record(ObsConfig::new())
        .run()
}

/// On every engine, the ring's per-quantum `packets` fields sum to the
/// run's `total_packets` (the ring is large enough here to hold every
/// quantum, so nothing is aggregated away).
#[test]
fn per_quantum_packets_sum_to_controller_total_on_every_engine() {
    let spec = ping_pong(2, 8, 9000);
    for engine in ENGINES {
        let report = recorded(&spec, engine, SyncConfig::ground_truth());
        let fr = report.obs.as_ref().expect("recording enabled");
        assert_eq!(fr.dropped(), 0, "{engine:?}: ring too small for the test");
        let ring_sum: u64 = fr.samples().map(|s| s.packets).sum();
        assert_eq!(
            ring_sum, report.total_packets,
            "{engine:?}: ring packets disagree with the controller"
        );
        assert_eq!(fr.total_packets(), report.total_packets, "{engine:?}");
    }
}

/// Same check under an adaptive policy on a heavier workload, where quanta
/// lengths vary and stragglers appear (deterministic engine — the threaded
/// engine's straggler timing is race-dependent).
#[test]
fn packet_accounting_survives_adaptive_quanta_and_stragglers() {
    let spec = nas::is(4, Scale::Tiny);
    let report = recorded(&spec, EngineKind::Deterministic, SyncConfig::paper_dyn1());
    let fr = report.obs.as_ref().expect("recording enabled");
    assert_eq!(fr.dropped(), 0);
    let ring_sum: u64 = fr.samples().map(|s| s.packets).sum();
    assert_eq!(ring_sum, report.total_packets);
    assert_eq!(fr.total_stragglers(), report.stragglers.count());
}

/// A `NullRecorder` run is bit-identical to a recorded run: attaching the
/// flight recorder never perturbs the simulation.
#[test]
fn null_and_recorded_runs_are_bit_identical_on_every_engine() {
    let spec = burst(4, 100_000, 2048);
    for engine in ENGINES {
        let plain = Sim::new(spec.programs.clone())
            .engine(engine)
            .sync(SyncConfig::ground_truth())
            .window(SimDuration::from_micros(30))
            .optimistic_costs(HostDuration::ZERO, HostDuration::ZERO)
            .max_quanta(50_000_000)
            .run();
        let taped = recorded(&spec, engine, SyncConfig::ground_truth());
        assert_eq!(
            plain.simulated_outcome(),
            taped.simulated_outcome(),
            "{engine:?}: recording perturbed the simulation"
        );
        assert_eq!(plain.total_quanta, taped.total_quanta, "{engine:?}");
        assert!(plain.obs.is_none());
        assert!(taped.obs.is_some());
    }
}

/// The exports hold together: one JSONL object and one CSV row per ring
/// sample, and the terminal summary renders the engine's headline numbers.
#[test]
fn exports_cover_the_ring() {
    let spec = ping_pong(2, 5, 64);
    let report = recorded(&spec, EngineKind::Deterministic, SyncConfig::ground_truth());
    let fr = report.obs.as_ref().expect("recording enabled");
    let jsonl = fr.to_jsonl();
    assert_eq!(jsonl.lines().count(), fr.ring_len());
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
    let csv = fr.to_csv();
    assert_eq!(csv.lines().count(), fr.ring_len() + 1, "header + rows");
    let summary = fr.render_summary();
    assert!(summary.contains(&fr.total_quanta().to_string()));
}
