//! The `Sim` builder is the engines' only entry point (the historical
//! `run_cluster`/`run_cluster_with_switch`/`run_parallel`/`run_optimistic`
//! free functions are gone). These tests pin the builder behaviors their
//! equivalence tests used to cover: determinism of repeated runs, the
//! default switch being exactly an explicit `Perfect`, and switch models
//! composing with policies.

use aqs::cluster::{ClusterConfig, RunReport, Sim, SimSwitch};
use aqs::core::SyncConfig;
use aqs::net::LatencyMatrixSwitch;
use aqs::time::SimDuration;
use aqs::workloads::{burst, ping_pong};

fn assert_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.simulated_outcome(), b.simulated_outcome());
    assert_eq!(a.total_quanta, b.total_quanta);
    assert_eq!(a.stragglers.count(), b.stragglers.count());
    assert_eq!(a.stragglers.total_delay(), b.stragglers.total_delay());
}

#[test]
fn repeated_builder_runs_are_bit_identical() {
    for sync in [SyncConfig::ground_truth(), SyncConfig::paper_dyn1()] {
        let spec = burst(4, 50_000, 2048);
        let config = ClusterConfig::new(sync).with_seed(9);
        let a = Sim::new(spec.programs.clone()).config(config.clone()).run();
        let b = Sim::new(spec.programs).config(config).run();
        assert_identical(&a, &b);
    }
}

#[test]
fn latency_matrix_runs_deterministically_under_adaptive_policy() {
    let spec = ping_pong(2, 25, 4096);
    let config = ClusterConfig::new(SyncConfig::paper_dyn2()).with_seed(3);
    let matrix = LatencyMatrixSwitch::uniform(2, SimDuration::from_micros(2));
    let mk = || {
        Sim::new(spec.programs.clone())
            .config(config.clone())
            .switch(SimSwitch::LatencyMatrix(matrix.clone()))
            .run()
    };
    let a = mk();
    let b = mk();
    assert_identical(&a, &b);
    // The 2 µs matrix must actually slow the run down vs the perfect switch.
    let perfect = Sim::new(spec.programs.clone()).config(config.clone()).run();
    assert!(a.sim_end > perfect.sim_end);
}

#[test]
fn default_switch_is_exactly_perfect() {
    let spec = ping_pong(2, 10, 512);
    let config = ClusterConfig::new(SyncConfig::ground_truth()).with_seed(5);
    let explicit = Sim::new(spec.programs.clone())
        .config(config.clone())
        .switch(SimSwitch::Perfect)
        .run();
    let default = Sim::new(spec.programs).config(config).run();
    assert_identical(&explicit, &default);
}
