//! Property-based integration tests: randomly generated (but well-formed)
//! communication patterns must complete, conserve messages, and respect the
//! safety condition under every policy.

use aqs::cluster::{RunReport, Sim};
use aqs::core::{AdaptiveConfig, SyncConfig};
use aqs::time::SimDuration;
use aqs::workloads::MpiBuilder;
use proptest::prelude::*;

/// A random but deadlock-free multi-rank program: a sequence of collective
/// phases, each preceded by random compute.
fn random_workload(
    n: usize,
    phases: &[(u8, u32, u32)], // (collective selector, compute kilo-ops, bytes)
) -> Vec<aqs::node::Program> {
    let mut m = MpiBuilder::new(n);
    for &(sel, kops, bytes) in phases {
        m.compute_all_imbalanced(kops as u64 * 1000 + 1, 0.1, sel as u64 + kops as u64);
        let bytes = bytes as u64 + 1;
        match sel % 5 {
            0 => m.barrier(),
            1 => m.allreduce(bytes, 50),
            2 => m.alltoall(bytes),
            3 => m.bcast(sel as usize % n, bytes),
            _ => {
                let dist = 1 + (sel as usize % (n - 1));
                m.neighbor_exchange(&[dist], bytes);
            }
        }
    }
    m.build()
}

fn det(programs: Vec<aqs::node::Program>, sync: SyncConfig, seed: u64) -> RunReport {
    Sim::new(programs).sync(sync).seed(seed).run()
}

fn policies() -> Vec<SyncConfig> {
    vec![
        SyncConfig::ground_truth(),
        SyncConfig::fixed_micros(37),
        SyncConfig::fixed_micros(1000),
        SyncConfig::paper_dyn1(),
        SyncConfig::Adaptive(AdaptiveConfig::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(64),
            1.2,
            0.3,
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random workload completes under every policy, with identical
    /// functional outcomes (messages received per rank).
    #[test]
    fn random_collectives_complete_under_all_policies(
        n in prop::sample::select(vec![2usize, 3, 4, 5, 8]),
        phases in prop::collection::vec((any::<u8>(), 0u32..200, 0u32..20_000), 1..5),
    ) {
        let programs = random_workload(n, &phases);
        let mut reference: Option<Vec<u64>> = None;
        for sync in policies() {
            let result = det(programs.clone(), sync, 99);
            let msgs: Vec<u64> = result
                .detail
                .as_deterministic()
                .unwrap()
                .per_node
                .iter()
                .map(|r| r.messages_received)
                .collect();
            match &reference {
                None => reference = Some(msgs),
                Some(expected) => prop_assert_eq!(&msgs, expected),
            }
        }
    }

    /// The safety condition holds for arbitrary workloads: the ground-truth
    /// quantum never produces stragglers.
    #[test]
    fn safe_quantum_never_straggles(
        n in prop::sample::select(vec![2usize, 4, 6]),
        phases in prop::collection::vec((any::<u8>(), 0u32..100, 0u32..40_000), 1..4),
        seed in any::<u64>(),
    ) {
        let programs = random_workload(n, &phases);
        let result = det(programs, SyncConfig::ground_truth(), seed);
        prop_assert_eq!(result.stragglers.count(), 0);
    }

    /// Host time strictly exceeds zero and sim time dilation is bounded
    /// below by 1 for any quantum.
    #[test]
    fn dilation_is_never_contraction(
        phases in prop::collection::vec((any::<u8>(), 0u32..100, 0u32..10_000), 1..4),
        q_us in prop::sample::select(vec![5u64, 50, 500]),
    ) {
        let programs = random_workload(4, &phases);
        let truth = det(programs.clone(), SyncConfig::ground_truth(), 1);
        let loose = det(programs, SyncConfig::fixed_micros(q_us), 1);
        prop_assert!(loose.sim_end >= truth.sim_end);
    }
}
