//! Integration tests of engine features beyond the happy path: custom
//! switch fabrics, heterogeneous hosts, sampling, and the optimistic
//! engine's exactness on random workloads.

use aqs::cluster::{
    run_workload, BarrierCostModel, ClusterConfig, EngineKind, RunReport, Sim, SimSwitch,
};
use aqs::core::SyncConfig;
use aqs::net::{LatencyMatrixSwitch, StoreAndForwardSwitch};
use aqs::node::{HostModel, SamplingModel};
use aqs::time::{HostDuration, SimDuration};
use aqs::workloads::{burst, ping_pong, uniform_compute, MpiBuilder};
use proptest::prelude::*;

fn base(seed: u64) -> ClusterConfig {
    ClusterConfig::new(SyncConfig::ground_truth()).with_seed(seed)
}

fn det(programs: Vec<aqs::node::Program>, config: &ClusterConfig) -> RunReport {
    Sim::new(programs).config(config.clone()).run()
}

#[test]
fn latency_matrix_inflates_cross_rack_roundtrip() {
    let spec = ping_pong(2, 5, 64);
    let flat = det(spec.programs.clone(), &base(1));
    let racked = Sim::new(spec.programs)
        .config(base(1))
        .switch(SimSwitch::LatencyMatrix(LatencyMatrixSwitch::uniform(
            2,
            SimDuration::from_micros(10),
        )))
        .run();
    // Each hop gains 10 µs; 10 hops total.
    let delta = racked.sim_end - flat.sim_end;
    assert_eq!(delta, SimDuration::from_micros(100));
    assert_eq!(
        racked.stragglers.count(),
        0,
        "higher latency only helps safety"
    );
}

#[test]
fn store_and_forward_congestion_slows_bursts() {
    let spec = burst(4, 10_000, 60_000); // 60 kB to every peer at once
    let perfect = det(spec.programs.clone(), &base(2));
    let congested = Sim::new(spec.programs)
        .config(base(2))
        .switch(SimSwitch::StoreAndForward(StoreAndForwardSwitch::new(
            SimDuration::from_micros(1),
            1_000_000_000, // 1 Gb/s ports
        )))
        .run();
    assert!(
        congested.sim_end > perfect.sim_end,
        "finite port bandwidth must delay the exchange: {} vs {}",
        congested.sim_end,
        perfect.sim_end
    );
}

#[test]
fn slower_node_override_slows_the_cluster() {
    // Pure compute + a free barrier isolates execution cost, where the
    // 4x-slower node 1 must set the pace. (No packets → no straggler
    // timing to disturb, so simulated time must be identical too.)
    let spec = uniform_compute(2, 1_000_000, 0.0);
    let even = base(3)
        .with_host(HostModel::uniform(30.0, 0.02))
        .with_barrier(BarrierCostModel::free());
    let skewed = even
        .clone()
        .with_node_host(1, HostModel::uniform(120.0, 0.02));
    let fast = det(spec.programs.clone(), &even)
        .detail
        .as_deterministic()
        .unwrap()
        .clone();
    let slow = det(spec.programs, &skewed)
        .detail
        .as_deterministic()
        .unwrap()
        .clone();
    assert!(
        slow.host_elapsed > fast.host_elapsed * 2,
        "{} !> 2 x {}",
        slow.host_elapsed,
        fast.host_elapsed
    );
    // Simulated results are unaffected by host speed.
    assert_eq!(slow.sim_end, fast.sim_end);
}

#[test]
fn sampling_composes_with_every_policy() {
    let spec = burst(4, 500_000, 1024);
    let sampling = SamplingModel::new(SimDuration::from_micros(100), 0.25, 10.0, 0.0);
    for sync in [
        SyncConfig::ground_truth(),
        SyncConfig::fixed_micros(100),
        SyncConfig::paper_dyn1(),
    ] {
        let plain = run_workload(&spec, &base(4).with_sync(sync.clone()));
        let sampled = run_workload(
            &spec,
            &base(4).with_sync(sync.clone()).with_sampling(sampling),
        );
        // Functional behaviour never changes.
        assert_eq!(sampled.total_packets, plain.total_packets, "under {sync}");
        assert_eq!(sampled.total_ops(), plain.total_ops(), "under {sync}");
    }
    // Under the straggler-free ground truth, zero-sigma sampling leaves the
    // simulated timeline untouched and only cuts host cost. (Under lossy
    // quanta, cheaper host execution shifts straggler deliveries, so the
    // timelines legitimately diverge.)
    let plain = run_workload(&spec, &base(4));
    let sampled = run_workload(&spec, &base(4).with_sampling(sampling));
    assert_eq!(sampled.sim_end, plain.sim_end);
    assert!(
        sampled.host_elapsed < plain.host_elapsed,
        "{} !< {}",
        sampled.host_elapsed,
        plain.host_elapsed
    );
}

/// Same random-workload generator as `random_programs.rs`, reused here to
/// pit the optimistic engine against the conservative ground truth.
fn random_workload(n: usize, phases: &[(u8, u32, u32)]) -> Vec<aqs::node::Program> {
    let mut m = MpiBuilder::new(n);
    for &(sel, kops, bytes) in phases {
        m.compute_all_imbalanced(kops as u64 * 1000 + 1, 0.1, sel as u64 + kops as u64);
        let bytes = bytes as u64 + 1;
        match sel % 5 {
            0 => m.barrier(),
            1 => m.allreduce(bytes, 50),
            2 => m.alltoall(bytes),
            3 => m.bcast(sel as usize % n, bytes),
            _ => {
                let dist = 1 + (sel as usize % (n - 1));
                m.neighbor_exchange(&[dist], bytes);
            }
        }
    }
    m.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Optimism is exact: for arbitrary collective workloads the committed
    /// optimistic timeline equals the conservative ground truth's.
    #[test]
    fn optimistic_equals_conservative_on_random_workloads(
        n in prop::sample::select(vec![2usize, 3, 4]),
        phases in prop::collection::vec((any::<u8>(), 0u32..60, 0u32..8_000), 1..4),
    ) {
        let programs = random_workload(n, &phases);
        let conservative = det(programs.clone(), &base(7));
        let optimistic = Sim::new(programs)
            .engine(EngineKind::Optimistic)
            .config(base(7))
            .window(SimDuration::from_micros(40))
            .optimistic_costs(HostDuration::ZERO, HostDuration::ZERO)
            .run();
        prop_assert_eq!(optimistic.simulated_outcome(), conservative.simulated_outcome());
    }
}
