//! Deterministic vs. threaded vs. optimistic vs. sharded engine: under the
//! safe quantum all four must agree exactly on the simulated timeline,
//! because no thread interleaving can create a straggler. The sharded
//! engine must additionally agree with itself for every worker count.

use aqs::cluster::{EngineKind, RunReport, Sim};
use aqs::core::SyncConfig;
use aqs::workloads::{burst, nas, ping_pong, MpiBuilder, Scale, WorkloadSpec};
use proptest::prelude::*;

fn run(programs: Vec<aqs::node::Program>, engine: EngineKind, sync: SyncConfig) -> RunReport {
    Sim::new(programs)
        .engine(engine)
        .sync(sync)
        .seed(1)
        .max_quanta(50_000_000)
        .run()
}

fn check_equivalence(spec: WorkloadSpec) {
    let det = run(
        spec.programs.clone(),
        EngineKind::Deterministic,
        SyncConfig::ground_truth(),
    );
    let par = run(
        spec.programs.clone(),
        EngineKind::Threaded,
        SyncConfig::ground_truth(),
    );
    assert_eq!(
        par.simulated_outcome(),
        det.simulated_outcome(),
        "{}: simulated outcomes differ",
        spec.name
    );
    assert_eq!(
        par.stragglers.count(),
        0,
        "{}: safe quantum straggled",
        spec.name
    );
    let det_nodes = &det.detail.as_deterministic().unwrap().per_node;
    let par_nodes = &par.detail.as_threaded().unwrap().per_node;
    for (p, d) in par_nodes.iter().zip(det_nodes) {
        assert_eq!(
            p.regions, d.regions,
            "{}: {} regions differ",
            spec.name, p.rank
        );
    }
    for workers in [1, 2, 3] {
        let sh = Sim::new(spec.programs.clone())
            .engine(EngineKind::Sharded)
            .shards(workers)
            .sync(SyncConfig::ground_truth())
            .seed(1)
            .max_quanta(50_000_000)
            .run();
        assert_eq!(
            sh.simulated_outcome(),
            det.simulated_outcome(),
            "{}: sharded (M={workers}) outcome differs",
            spec.name
        );
        let sh_nodes = &sh.detail.as_sharded().unwrap().per_node;
        for (s, d) in sh_nodes.iter().zip(det_nodes) {
            assert_eq!(
                s.regions, d.regions,
                "{}: sharded (M={workers}) {} regions differ",
                spec.name, s.rank
            );
        }
    }
}

#[test]
fn ping_pong_engines_agree() {
    check_equivalence(ping_pong(2, 8, 64));
}

#[test]
fn multi_fragment_engines_agree() {
    check_equivalence(ping_pong(2, 3, 30_000));
}

#[test]
fn burst_engines_agree() {
    check_equivalence(burst(4, 200_000, 2048));
}

#[test]
fn is_kernel_engines_agree() {
    check_equivalence(nas::is(4, Scale::Tiny));
}

#[test]
fn lu_wavefront_engines_agree() {
    check_equivalence(nas::lu(4, Scale::Tiny));
}

/// A random but deadlock-free multi-rank program: a sequence of collective
/// phases, each preceded by random (imbalanced) compute.
fn random_workload(n: usize, phases: &[(u8, u32, u32)]) -> Vec<aqs::node::Program> {
    let mut m = MpiBuilder::new(n);
    for &(sel, kops, bytes) in phases {
        m.compute_all_imbalanced(kops as u64 * 1000 + 1, 0.1, sel as u64 + kops as u64);
        let bytes = bytes as u64 + 1;
        match sel % 5 {
            0 => m.barrier(),
            1 => m.allreduce(bytes, 50),
            2 => m.alltoall(bytes),
            3 => m.bcast(sel as usize % n, bytes),
            _ => {
                let dist = 1 + (sel as usize % (n - 1));
                m.neighbor_exchange(&[dist], bytes);
            }
        }
    }
    m.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four engines — deterministic, threaded, optimistic, sharded —
    /// agree on `messages_received`, `total_packets`, and `sim_end` for
    /// random programs under the safe quantum `Q <= T`.
    #[test]
    fn four_engines_agree_on_random_programs(
        n in prop::sample::select(vec![2usize, 3, 4]),
        phases in prop::collection::vec((any::<u8>(), 0u32..80, 0u32..10_000), 1..4),
    ) {
        let programs = random_workload(n, &phases);
        let mk = |engine| {
            Sim::new(programs.clone())
                .engine(engine)
                .sync(SyncConfig::ground_truth())
                .seed(3)
                .max_quanta(50_000_000)
                .run()
        };
        let det = mk(EngineKind::Deterministic);
        let par = mk(EngineKind::Threaded);
        let opt = mk(EngineKind::Optimistic);
        // sim_end: all engines identical, sharded for every worker count.
        prop_assert_eq!(par.sim_end, det.sim_end);
        prop_assert_eq!(opt.sim_end, det.sim_end);
        for workers in [1, 2, 4] {
            let sh = Sim::new(programs.clone())
                .engine(EngineKind::Sharded)
                .shards(workers)
                .sync(SyncConfig::ground_truth())
                .seed(3)
                .max_quanta(50_000_000)
                .run();
            prop_assert_eq!(sh.simulated_outcome(), det.simulated_outcome());
            prop_assert_eq!(sh.stragglers.count(), 0);
        }
        // total_packets: identical between engines.
        prop_assert_eq!(par.total_packets, det.total_packets);
        // messages_received: identical per node across all three (covered
        // by the full outcome comparison, which also checks finish times).
        prop_assert_eq!(par.simulated_outcome(), det.simulated_outcome());
        for (o, d) in opt
            .detail
            .as_optimistic()
            .unwrap()
            .per_node
            .iter()
            .zip(&det.detail.as_deterministic().unwrap().per_node)
        {
            prop_assert_eq!(o.messages_received, d.messages_received);
        }
        prop_assert_eq!(par.stragglers.count(), 0);
    }
}

/// The threaded engine's lock-free mailbox must never drop or duplicate a
/// fragment, under concurrent producers racing a draining consumer.
#[test]
fn mailbox_stress_no_drop_no_duplicate() {
    use aqs::sync::Mailbox;
    use std::sync::Arc;

    const PRODUCERS: u64 = 8;
    const PER_PRODUCER: u64 = 25_000;
    let mb = Arc::new(Mailbox::new());
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                for seq in 0..PER_PRODUCER {
                    mb.push((p, seq));
                }
            })
        })
        .collect();
    // Drain concurrently with production, like a node thread at its
    // scheduling points.
    let mut got: Vec<(u64, u64)> = Vec::new();
    while got.len() < (PRODUCERS * PER_PRODUCER) as usize {
        mb.drain_into(&mut got);
        std::thread::yield_now();
    }
    for h in producers {
        h.join().unwrap();
    }
    mb.drain_into(&mut got);
    assert_eq!(
        got.len() as u64,
        PRODUCERS * PER_PRODUCER,
        "fragments were dropped"
    );
    // Exactly-once and per-producer FIFO: for each producer the sequence
    // numbers must appear in order with no repeats or gaps.
    let mut next = vec![0u64; PRODUCERS as usize];
    for (p, seq) in got {
        assert_eq!(
            seq, next[p as usize],
            "producer {p} out of order or duplicated"
        );
        next[p as usize] += 1;
    }
    assert!(next.iter().all(|&c| c == PER_PRODUCER));
}

/// With a long quantum the threaded engine's stragglers depend on real
/// races, but functional delivery must still be complete.
#[test]
fn long_quantum_keeps_functional_integrity() {
    let spec = burst(4, 100_000, 2048);
    let det = run(
        spec.programs.clone(),
        EngineKind::Deterministic,
        SyncConfig::fixed_micros(1000),
    );
    let par = run(
        spec.programs,
        EngineKind::Threaded,
        SyncConfig::fixed_micros(1000),
    );
    assert_eq!(par.messages_received, det.messages_received);
    assert_eq!(par.total_packets, det.total_packets);
}

/// With a long (unsafe) quantum the sharded engine snaps every straggler to
/// the sender's quantum edge at route time, so — unlike the threaded
/// engine — its dilated timeline is fully deterministic: bit-identical
/// outcomes for every worker count, stragglers included.
#[test]
fn long_quantum_sharded_is_identical_for_every_worker_count() {
    let spec = burst(4, 100_000, 2048);
    let runs: Vec<RunReport> = [1, 2, 3, 4]
        .into_iter()
        .map(|workers| {
            Sim::new(spec.programs.clone())
                .engine(EngineKind::Sharded)
                .shards(workers)
                .sync(SyncConfig::fixed_micros(1000))
                .seed(1)
                .max_quanta(50_000_000)
                .run()
        })
        .collect();
    let base = &runs[0];
    assert!(base.stragglers.count() > 0, "expected an unsafe quantum");
    for r in &runs[1..] {
        assert_eq!(r.simulated_outcome(), base.simulated_outcome());
        assert_eq!(r.stragglers.count(), base.stragglers.count());
        assert_eq!(r.stragglers.max_delay(), base.stragglers.max_delay());
        assert_eq!(r.total_quanta, base.total_quanta);
    }
}
