//! Deterministic vs. threaded vs. optimistic vs. sharded engine: under the
//! safe quantum all four must agree exactly on the simulated timeline,
//! because no thread interleaving can create a straggler. The sharded
//! engine must additionally agree with itself for every worker count.

use aqs::cluster::{EngineKind, RunReport, Sim};
use aqs::core::SyncConfig;
use aqs::workloads::{burst, nas, ping_pong, MpiBuilder, Scale, WorkloadSpec};
use proptest::prelude::*;

fn run(programs: Vec<aqs::node::Program>, engine: EngineKind, sync: SyncConfig) -> RunReport {
    Sim::new(programs)
        .engine(engine)
        .sync(sync)
        .seed(1)
        .max_quanta(50_000_000)
        .run()
}

fn check_equivalence(spec: WorkloadSpec) {
    let det = run(
        spec.programs.clone(),
        EngineKind::Deterministic,
        SyncConfig::ground_truth(),
    );
    let par = run(
        spec.programs.clone(),
        EngineKind::Threaded,
        SyncConfig::ground_truth(),
    );
    assert_eq!(
        par.simulated_outcome(),
        det.simulated_outcome(),
        "{}: simulated outcomes differ",
        spec.name
    );
    assert_eq!(
        par.stragglers.count(),
        0,
        "{}: safe quantum straggled",
        spec.name
    );
    let det_nodes = &det.detail.as_deterministic().unwrap().per_node;
    let par_nodes = &par.detail.as_threaded().unwrap().per_node;
    for (p, d) in par_nodes.iter().zip(det_nodes) {
        assert_eq!(
            p.regions, d.regions,
            "{}: {} regions differ",
            spec.name, p.rank
        );
    }
    for workers in [1, 2, 3] {
        let sh = Sim::new(spec.programs.clone())
            .engine(EngineKind::Sharded)
            .shards(workers)
            .sync(SyncConfig::ground_truth())
            .seed(1)
            .max_quanta(50_000_000)
            .run();
        assert_eq!(
            sh.simulated_outcome(),
            det.simulated_outcome(),
            "{}: sharded (M={workers}) outcome differs",
            spec.name
        );
        let sh_nodes = &sh.detail.as_sharded().unwrap().per_node;
        for (s, d) in sh_nodes.iter().zip(det_nodes) {
            assert_eq!(
                s.regions, d.regions,
                "{}: sharded (M={workers}) {} regions differ",
                spec.name, s.rank
            );
        }
    }
}

#[test]
fn ping_pong_engines_agree() {
    check_equivalence(ping_pong(2, 8, 64));
}

#[test]
fn multi_fragment_engines_agree() {
    check_equivalence(ping_pong(2, 3, 30_000));
}

#[test]
fn burst_engines_agree() {
    check_equivalence(burst(4, 200_000, 2048));
}

#[test]
fn is_kernel_engines_agree() {
    check_equivalence(nas::is(4, Scale::Tiny));
}

#[test]
fn lu_wavefront_engines_agree() {
    check_equivalence(nas::lu(4, Scale::Tiny));
}

/// A random but deadlock-free multi-rank program: a sequence of collective
/// phases, each preceded by random (imbalanced) compute.
fn random_workload(n: usize, phases: &[(u8, u32, u32)]) -> Vec<aqs::node::Program> {
    let mut m = MpiBuilder::new(n);
    for &(sel, kops, bytes) in phases {
        m.compute_all_imbalanced(kops as u64 * 1000 + 1, 0.1, sel as u64 + kops as u64);
        let bytes = bytes as u64 + 1;
        match sel % 5 {
            0 => m.barrier(),
            1 => m.allreduce(bytes, 50),
            2 => m.alltoall(bytes),
            3 => m.bcast(sel as usize % n, bytes),
            _ => {
                let dist = 1 + (sel as usize % (n - 1));
                m.neighbor_exchange(&[dist], bytes);
            }
        }
    }
    m.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four engines — deterministic, threaded, optimistic, sharded —
    /// agree on `messages_received`, `total_packets`, and `sim_end` for
    /// random programs under the safe quantum `Q <= T`.
    #[test]
    fn four_engines_agree_on_random_programs(
        n in prop::sample::select(vec![2usize, 3, 4]),
        phases in prop::collection::vec((any::<u8>(), 0u32..80, 0u32..10_000), 1..4),
    ) {
        let programs = random_workload(n, &phases);
        let mk = |engine| {
            Sim::new(programs.clone())
                .engine(engine)
                .sync(SyncConfig::ground_truth())
                .seed(3)
                .max_quanta(50_000_000)
                .run()
        };
        let det = mk(EngineKind::Deterministic);
        let par = mk(EngineKind::Threaded);
        let opt = mk(EngineKind::Optimistic);
        // sim_end: all engines identical, sharded for every worker count.
        prop_assert_eq!(par.sim_end, det.sim_end);
        prop_assert_eq!(opt.sim_end, det.sim_end);
        for workers in [1, 2, 4] {
            let sh = Sim::new(programs.clone())
                .engine(EngineKind::Sharded)
                .shards(workers)
                .sync(SyncConfig::ground_truth())
                .seed(3)
                .max_quanta(50_000_000)
                .run();
            prop_assert_eq!(sh.simulated_outcome(), det.simulated_outcome());
            prop_assert_eq!(sh.stragglers.count(), 0);
        }
        // total_packets: identical between engines.
        prop_assert_eq!(par.total_packets, det.total_packets);
        // messages_received: identical per node across all three (covered
        // by the full outcome comparison, which also checks finish times).
        prop_assert_eq!(par.simulated_outcome(), det.simulated_outcome());
        for (o, d) in opt
            .detail
            .as_optimistic()
            .unwrap()
            .per_node
            .iter()
            .zip(&det.detail.as_deterministic().unwrap().per_node)
        {
            prop_assert_eq!(o.messages_received, d.messages_received);
        }
        prop_assert_eq!(par.stragglers.count(), 0);
    }
}

/// The threaded engine's lock-free mailbox must never drop or duplicate a
/// fragment, under concurrent producers racing a draining consumer.
#[test]
fn mailbox_stress_no_drop_no_duplicate() {
    use aqs::sync::Mailbox;
    use std::sync::Arc;

    const PRODUCERS: u64 = 8;
    const PER_PRODUCER: u64 = 25_000;
    let mb = Arc::new(Mailbox::new());
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                for seq in 0..PER_PRODUCER {
                    mb.push((p, seq));
                }
            })
        })
        .collect();
    // Drain concurrently with production, like a node thread at its
    // scheduling points.
    let mut got: Vec<(u64, u64)> = Vec::new();
    while got.len() < (PRODUCERS * PER_PRODUCER) as usize {
        mb.drain_into(&mut got);
        std::thread::yield_now();
    }
    for h in producers {
        h.join().unwrap();
    }
    mb.drain_into(&mut got);
    assert_eq!(
        got.len() as u64,
        PRODUCERS * PER_PRODUCER,
        "fragments were dropped"
    );
    // Exactly-once and per-producer FIFO: for each producer the sequence
    // numbers must appear in order with no repeats or gaps.
    let mut next = vec![0u64; PRODUCERS as usize];
    for (p, seq) in got {
        assert_eq!(
            seq, next[p as usize],
            "producer {p} out of order or duplicated"
        );
        next[p as usize] += 1;
    }
    assert!(next.iter().all(|&c| c == PER_PRODUCER));
}

/// A broadcast workload: each round, rank 0 `send_all`s and every other
/// rank posts a matching recv, then everyone rendezvous through replies so
/// the rounds cannot overlap.
fn broadcast_workload(n: usize, rounds: usize, bytes: u64) -> Vec<aqs::node::Program> {
    use aqs::node::{ProgramBuilder, Rank, Tag};
    (0..n)
        .map(|r| {
            let mut b = ProgramBuilder::new(Rank::new(r as u32));
            for round in 0..rounds {
                let tag = Tag::new(round as u32);
                if r == 0 {
                    b = b.send_all(bytes, tag);
                    for peer in 1..n {
                        b = b.recv(Some(Rank::new(peer as u32)), tag);
                    }
                } else {
                    b = b.recv(Some(Rank::new(0)), tag).send(Rank::new(0), 8, tag);
                }
            }
            b.build()
        })
        .collect()
}

/// `Destination::Broadcast` under every switch model: the fan-out must
/// count one packet per fragment per receiver in all four engines, and the
/// per-destination transits must be independent (the perfect-switch count
/// equals the non-perfect count; only timing changes).
#[test]
fn broadcast_fan_out_counts_identically_across_engines() {
    let n = 4usize;
    let rounds = 3usize;
    let bytes = 20_000u64;
    let programs = broadcast_workload(n, rounds, bytes);
    let nic = aqs::net::NicModel::paper_default();
    // Per round: the broadcast fans each fragment to n-1 receivers, and the
    // n-1 unicast replies are one fragment each.
    let frags = nic.fragment_count(bytes) as u64;
    let expected = rounds as u64 * (n as u64 - 1) * (frags + 1);
    let det = run(
        programs.clone(),
        EngineKind::Deterministic,
        SyncConfig::ground_truth(),
    );
    assert_eq!(det.total_packets, expected);
    let par = run(
        programs.clone(),
        EngineKind::Threaded,
        SyncConfig::ground_truth(),
    );
    let opt = run(
        programs.clone(),
        EngineKind::Optimistic,
        SyncConfig::ground_truth(),
    );
    assert_eq!(par.simulated_outcome(), det.simulated_outcome());
    assert_eq!(opt.total_packets, expected);
    for workers in [1, 2, 3] {
        let sh = Sim::new(programs.clone())
            .engine(EngineKind::Sharded)
            .shards(workers)
            .sync(SyncConfig::ground_truth())
            .seed(1)
            .max_quanta(50_000_000)
            .run();
        assert_eq!(sh.simulated_outcome(), det.simulated_outcome());
    }
}

/// Broadcast under the two non-perfect switches: an asymmetric latency
/// matrix and the fat-tree fabric. Each fan-out copy takes its own
/// (src, dst)-keyed transit, so receivers see different arrival times — and
/// the deterministic, threaded, and sharded (every M) engines must still
/// agree bit for bit, safe quantum and unsafe quantum alike.
#[test]
fn broadcast_agrees_under_non_perfect_switches() {
    use aqs::cluster::SimSwitch;
    use aqs::net::{FabricConfig, LatencyMatrixSwitch};
    use aqs::time::SimDuration;
    let n = 5usize;
    let programs = broadcast_workload(n, 4, 12_000);
    let matrix = LatencyMatrixSwitch::from_fn(n, |src, dst| {
        // Asymmetric on purpose: transit depends on direction.
        SimDuration::from_nanos(500 + 1_700 * src.index() as u64 + 900 * dst.index() as u64)
    });
    let fabric = SimSwitch::Fabric(
        FabricConfig::fat_tree()
            .with_rack_size(2)
            .with_uplinks_per_rack(2),
    );
    for switch in [SimSwitch::LatencyMatrix(matrix), fabric] {
        for sync in [SyncConfig::ground_truth(), SyncConfig::fixed_micros(500)] {
            let mk = |engine: EngineKind, workers: Option<usize>| {
                let mut sim = Sim::new(programs.clone())
                    .engine(engine)
                    .switch(switch.clone())
                    .sync(sync.clone())
                    .seed(1)
                    .max_quanta(50_000_000);
                if let Some(m) = workers {
                    sim = sim.shards(m);
                }
                sim.run()
            };
            let det = mk(EngineKind::Deterministic, None);
            let sharded: Vec<RunReport> = [1, 2, 3]
                .into_iter()
                .map(|m| mk(EngineKind::Sharded, Some(m)))
                .collect();
            for sh in &sharded {
                assert_eq!(
                    sh.simulated_outcome(),
                    sharded[0].simulated_outcome(),
                    "sharded outcome must be M-independent ({})",
                    switch.name()
                );
            }
            // Under the safe quantum the sharded timeline is the
            // deterministic timeline; under the unsafe one it may dilate
            // (boundary snapping) but functional delivery must match.
            if sync == SyncConfig::ground_truth() {
                assert_eq!(sharded[0].simulated_outcome(), det.simulated_outcome());
                let thr = mk(EngineKind::Threaded, None);
                assert_eq!(thr.simulated_outcome(), det.simulated_outcome());
            } else {
                assert_eq!(sharded[0].total_packets, det.total_packets);
                assert_eq!(sharded[0].messages_received, det.messages_received);
            }
        }
    }
}

/// With a long quantum the threaded engine's stragglers depend on real
/// races, but functional delivery must still be complete.
#[test]
fn long_quantum_keeps_functional_integrity() {
    let spec = burst(4, 100_000, 2048);
    let det = run(
        spec.programs.clone(),
        EngineKind::Deterministic,
        SyncConfig::fixed_micros(1000),
    );
    let par = run(
        spec.programs,
        EngineKind::Threaded,
        SyncConfig::fixed_micros(1000),
    );
    assert_eq!(par.messages_received, det.messages_received);
    assert_eq!(par.total_packets, det.total_packets);
}

/// With a long (unsafe) quantum the sharded engine snaps every straggler to
/// the sender's quantum edge at route time, so — unlike the threaded
/// engine — its dilated timeline is fully deterministic: bit-identical
/// outcomes for every worker count, stragglers included.
#[test]
fn long_quantum_sharded_is_identical_for_every_worker_count() {
    let spec = burst(4, 100_000, 2048);
    let runs: Vec<RunReport> = [1, 2, 3, 4]
        .into_iter()
        .map(|workers| {
            Sim::new(spec.programs.clone())
                .engine(EngineKind::Sharded)
                .shards(workers)
                .sync(SyncConfig::fixed_micros(1000))
                .seed(1)
                .max_quanta(50_000_000)
                .run()
        })
        .collect();
    let base = &runs[0];
    assert!(base.stragglers.count() > 0, "expected an unsafe quantum");
    for r in &runs[1..] {
        assert_eq!(r.simulated_outcome(), base.simulated_outcome());
        assert_eq!(r.stragglers.count(), base.stragglers.count());
        assert_eq!(r.stragglers.max_delay(), base.stragglers.max_delay());
        assert_eq!(r.total_quanta, base.total_quanta);
    }
}
