//! Deterministic engine vs. threaded engine: under the safe quantum the two
//! must agree exactly on the simulated timeline, because no thread
//! interleaving can create a straggler.

use aqs::cluster::parallel::{run_parallel, ParallelConfig};
use aqs::cluster::{run_cluster, ClusterConfig};
use aqs::core::SyncConfig;
use aqs::workloads::{burst, nas, ping_pong, Scale, WorkloadSpec};

fn check_equivalence(spec: WorkloadSpec) {
    let det = run_cluster(
        spec.programs.clone(),
        &ClusterConfig::new(SyncConfig::ground_truth()).with_seed(1),
    );
    let par = run_parallel(
        spec.programs.clone(),
        &ParallelConfig::new(SyncConfig::ground_truth()).with_max_quanta(50_000_000),
    );
    assert_eq!(par.sim_end, det.sim_end, "{}: simulated end times differ", spec.name);
    assert_eq!(par.total_packets, det.total_packets, "{}: packet counts differ", spec.name);
    assert_eq!(par.stragglers.count(), 0, "{}: safe quantum straggled", spec.name);
    for (p, d) in par.per_node.iter().zip(&det.per_node) {
        assert_eq!(p.rank, d.rank);
        assert_eq!(p.finish_sim, d.finish_sim, "{}: {} finish times differ", spec.name, p.rank);
        assert_eq!(p.ops, d.ops);
        assert_eq!(p.messages_received, d.messages_received);
        assert_eq!(p.regions, d.regions, "{}: {} regions differ", spec.name, p.rank);
    }
}

#[test]
fn ping_pong_engines_agree() {
    check_equivalence(ping_pong(2, 8, 64));
}

#[test]
fn multi_fragment_engines_agree() {
    check_equivalence(ping_pong(2, 3, 30_000));
}

#[test]
fn burst_engines_agree() {
    check_equivalence(burst(4, 200_000, 2048));
}

#[test]
fn is_kernel_engines_agree() {
    check_equivalence(nas::is(4, Scale::Tiny));
}

#[test]
fn lu_wavefront_engines_agree() {
    check_equivalence(nas::lu(4, Scale::Tiny));
}

/// With a long quantum the threaded engine's stragglers depend on real
/// races, but functional delivery must still be complete.
#[test]
fn long_quantum_keeps_functional_integrity() {
    let spec = burst(4, 100_000, 2048);
    let det = run_cluster(
        spec.programs.clone(),
        &ClusterConfig::new(SyncConfig::fixed_micros(1000)).with_seed(1),
    );
    let par = run_parallel(
        spec.programs,
        &ParallelConfig::new(SyncConfig::fixed_micros(1000)).with_max_quanta(50_000_000),
    );
    let det_msgs: u64 = det.per_node.iter().map(|n| n.messages_received).sum();
    assert_eq!(par.messages_received_total(), det_msgs);
    assert_eq!(par.total_packets, det.total_packets);
}
