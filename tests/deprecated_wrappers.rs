//! The deprecated free-function entry points must stay exact aliases of the
//! unified `Sim` builder until they are removed: same timeline, same
//! statistics, same per-node results, for both switch models and for fixed
//! and adaptive policies. Anything less and callers migrating to the
//! builder would silently change their results.

#![allow(deprecated)]

use aqs::cluster::{run_cluster, run_cluster_with_switch, ClusterConfig, Sim, SimSwitch};
use aqs::core::SyncConfig;
use aqs::net::{LatencyMatrixSwitch, PerfectSwitch};
use aqs::time::SimDuration;
use aqs::workloads::{burst, ping_pong};

fn assert_equivalent(wrapper: &aqs::cluster::RunResult, report: &aqs::cluster::RunReport) {
    let det = report
        .detail
        .as_deterministic()
        .expect("builder defaulted to the deterministic engine");
    assert_eq!(wrapper.sim_end, det.sim_end);
    assert_eq!(wrapper.total_packets, det.total_packets);
    assert_eq!(wrapper.total_quanta, det.total_quanta);
    assert_eq!(wrapper.stragglers.count(), det.stragglers.count());
    assert_eq!(
        wrapper.stragglers.total_delay(),
        det.stragglers.total_delay()
    );
    assert_eq!(wrapper.per_node.len(), det.per_node.len());
    for (w, b) in wrapper.per_node.iter().zip(&det.per_node) {
        assert_eq!(w.rank, b.rank);
        assert_eq!(w.finish_sim, b.finish_sim);
        assert_eq!(w.ops, b.ops);
        assert_eq!(w.messages_received, b.messages_received);
    }
}

#[test]
fn run_cluster_equals_sim_builder() {
    for sync in [SyncConfig::ground_truth(), SyncConfig::paper_dyn1()] {
        let spec = burst(4, 50_000, 2048);
        let config = ClusterConfig::new(sync).with_seed(9);
        let wrapper = run_cluster(spec.programs.clone(), &config);
        let report = Sim::new(spec.programs).config(config).run();
        assert_equivalent(&wrapper, &report);
    }
}

#[test]
fn run_cluster_with_switch_equals_sim_builder() {
    let spec = ping_pong(2, 25, 4096);
    let config = ClusterConfig::new(SyncConfig::paper_dyn2()).with_seed(3);
    let matrix = LatencyMatrixSwitch::uniform(2, SimDuration::from_micros(2));
    let wrapper = run_cluster_with_switch(spec.programs.clone(), &config, matrix.clone());
    let report = Sim::new(spec.programs)
        .config(config)
        .switch(SimSwitch::LatencyMatrix(matrix))
        .run();
    assert_equivalent(&wrapper, &report);
}

#[test]
fn perfect_switch_wrapper_equals_default_builder_switch() {
    let spec = ping_pong(2, 10, 512);
    let config = ClusterConfig::new(SyncConfig::ground_truth()).with_seed(5);
    let explicit = run_cluster_with_switch(spec.programs.clone(), &config, PerfectSwitch::new());
    let report = Sim::new(spec.programs).config(config).run();
    assert_equivalent(&explicit, &report);
}
