//! Property-based tests of the hybrid engine's headline claims:
//!
//! * under the safe quantum (`Q ≤ T`) the hybrid engine is **bit-identical**
//!   to the deterministic engine for every shard count — the adaptive
//!   policy must be invisible when nothing can straggle;
//! * under an unsafe quantum with injected stragglers, the whole adaptive
//!   trajectory — per-shard mode switches, GVT trace, outcome — is
//!   **reproducible from the seed**, run after run;
//! * a run that never degrades a shard reproduces the ground-truth timeline
//!   exactly, rollbacks notwithstanding.

use aqs::cluster::{EngineKind, HybridPolicy, RunReport, Sim};
use aqs::core::SyncConfig;
use aqs::workloads::MpiBuilder;
use proptest::prelude::*;

/// A random but deadlock-free multi-rank program: collective phases, each
/// preceded by imbalanced compute (the imbalance is what makes quanta above
/// the safe bound straggle).
fn random_workload(n: usize, phases: &[(u8, u32, u32)]) -> Vec<aqs::node::Program> {
    let mut m = MpiBuilder::new(n);
    for &(sel, kops, bytes) in phases {
        m.compute_all_imbalanced(kops as u64 * 1000 + 1, 0.3, sel as u64 + kops as u64);
        let bytes = bytes as u64 + 1;
        match sel % 5 {
            0 => m.barrier(),
            1 => m.allreduce(bytes, 50),
            2 => m.alltoall(bytes),
            3 => m.bcast(sel as usize % n, bytes),
            _ => {
                let dist = 1 + (sel as usize % (n - 1));
                m.neighbor_exchange(&[dist], bytes);
            }
        }
    }
    m.build()
}

fn hybrid(programs: Vec<aqs::node::Program>, sync: SyncConfig, shards: usize) -> RunReport {
    Sim::new(programs)
        .engine(EngineKind::Hybrid)
        .sync(sync)
        .shards(shards)
        .hybrid_policy(HybridPolicy {
            degrade_after: 2,
            recover_after: 2,
        })
        .max_quanta(2_000_000)
        .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Q ≤ T: the hybrid engine must agree with the deterministic engine
    /// bit-for-bit, for every shard count — and never roll back at all.
    #[test]
    fn hybrid_is_bit_identical_to_deterministic_under_safe_quantum(
        n in prop::sample::select(vec![2usize, 3, 4, 6]),
        phases in prop::collection::vec((any::<u8>(), 0u32..150, 0u32..16_000), 1..4),
    ) {
        let programs = random_workload(n, &phases);
        let det = Sim::new(programs.clone())
            .sync(SyncConfig::ground_truth())
            .seed(1)
            .run();
        let truth = det.simulated_outcome();
        for m in 1..=4usize {
            let h = hybrid(programs.clone(), SyncConfig::ground_truth(), m);
            prop_assert_eq!(h.simulated_outcome(), truth.clone(), "shards={}", m);
            let d = h.detail.as_sharded_optimistic().expect("hybrid detail");
            prop_assert_eq!(d.rollbacks, 0);
            prop_assert_eq!(d.mode_events.len(), 0);
        }
    }

    /// Q > T: stragglers force rollbacks and mode switches, but the whole
    /// trajectory replays bit-identically — the switches are a pure
    /// function of the (seeded) workload, not of thread scheduling.
    #[test]
    fn mode_switches_replay_bit_identically_under_unsafe_quantum(
        n in prop::sample::select(vec![3usize, 4, 6]),
        phases in prop::collection::vec((any::<u8>(), 0u32..150, 0u32..16_000), 1..4),
        q_us in prop::sample::select(vec![50u64, 200, 1000]),
        shards in prop::sample::select(vec![1usize, 2, 3, 4]),
    ) {
        let programs = random_workload(n, &phases);
        let a = hybrid(programs.clone(), SyncConfig::fixed_micros(q_us), shards);
        let b = hybrid(programs, SyncConfig::fixed_micros(q_us), shards);
        prop_assert_eq!(a.simulated_outcome(), b.simulated_outcome());
        let da = a.detail.as_sharded_optimistic().expect("hybrid detail");
        let db = b.detail.as_sharded_optimistic().expect("hybrid detail");
        prop_assert_eq!(&da.mode_events, &db.mode_events);
        prop_assert_eq!(&da.gvt_trace, &db.gvt_trace);
        prop_assert_eq!(da.rollbacks, db.rollbacks);
        prop_assert_eq!(da.conservative_windows, db.conservative_windows);
    }

    /// An undegraded, snap-free run under an unsafe quantum lands on the
    /// ground-truth timeline exactly: the fixed point converges to the same
    /// arrivals the deterministic engine computes event by event.
    #[test]
    fn undegraded_runs_are_exact_under_unsafe_quantum(
        phases in prop::collection::vec((any::<u8>(), 0u32..100, 0u32..8_000), 1..3),
        shards in prop::sample::select(vec![1usize, 2, 3]),
    ) {
        let programs = random_workload(4, &phases);
        let det = Sim::new(programs.clone())
            .sync(SyncConfig::ground_truth())
            .seed(1)
            .run();
        let r = Sim::new(programs)
            .engine(EngineKind::ShardedOptimistic)
            .sync(SyncConfig::fixed_micros(20))
            .cascade_bound(4096)
            .shards(shards)
            .max_quanta(2_000_000)
            .run();
        let d = r.detail.as_sharded_optimistic().expect("opt detail");
        if d.degraded_windows == 0 && r.stragglers.count() == 0 {
            prop_assert_eq!(r.simulated_outcome(), det.simulated_outcome());
        }
    }
}

/// A workload guaranteed to straggle under a 1 ms quantum: tight ping-pong
/// dependency chains. The hybrid policy must actually switch shards to
/// conservative execution (and the switches must be on the record).
#[test]
fn deep_dependency_chains_force_recorded_mode_switches() {
    let spec = aqs::workloads::ping_pong(4, 25, 4096);
    let r = Sim::new(spec.programs)
        .engine(EngineKind::Hybrid)
        .sync(SyncConfig::fixed_micros(1000))
        .hybrid_policy(HybridPolicy {
            degrade_after: 1,
            recover_after: 2,
        })
        .shards(4)
        .run();
    let d = r.detail.as_sharded_optimistic().expect("hybrid detail");
    assert!(d.rollbacks > 0, "the chain must straggle");
    assert!(
        d.mode_events.iter().any(|e| e.conservative),
        "at least one shard must degrade to conservative execution"
    );
    assert!(d.conservative_windows > 0);
}
