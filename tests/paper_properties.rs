//! Cross-crate integration tests of the paper's central claims.

use aqs::cluster::{
    app_metric, paper_sweep, run_workload, ClusterConfig, EngineKind, Experiment, Sim,
};
use aqs::core::{AdaptiveConfig, SyncConfig};
use aqs::obs::ObsConfig;
use aqs::time::{SimDuration, SimTime};
use aqs::workloads::{burst, namd, nas, ping_pong, uniform_compute, Scale};
use proptest::prelude::*;

fn base(seed: u64) -> ClusterConfig {
    ClusterConfig::new(SyncConfig::ground_truth()).with_seed(seed)
}

/// The safety condition (§3): with `Q ≤ T` no configuration of workload or
/// node speeds can produce a straggler.
#[test]
fn safe_quantum_is_straggler_free_across_workloads() {
    for spec in [
        ping_pong(2, 10, 64),
        ping_pong(4, 5, 20_000),
        burst(4, 100_000, 4096),
        nas::is(4, Scale::Tiny),
        nas::lu(4, Scale::Tiny),
        namd::namd(4, Scale::Tiny),
    ] {
        let r = run_workload(&spec, &base(3));
        assert_eq!(
            r.stragglers.count(),
            0,
            "{} straggled under Q <= T",
            spec.name
        );
    }
}

/// Longer fixed quanta are (weakly) faster on every workload — the whole
/// reason to trade accuracy away.
#[test]
fn speed_is_monotone_in_fixed_quantum() {
    let spec = nas::cg(4, Scale::Tiny);
    let mut last = None;
    for q in [1u64, 10, 100, 1000] {
        let r = run_workload(&spec, &base(5).with_sync(SyncConfig::fixed_micros(q)));
        if let Some(prev) = last {
            assert!(
                r.host_elapsed <= prev,
                "Q={q}µs was slower than the previous quantum ({} > {prev})",
                r.host_elapsed
            );
        }
        last = Some(r.host_elapsed);
    }
}

/// Simulated time only dilates (never contracts) as the quantum grows:
/// stragglers delay deliveries, they never accelerate them.
#[test]
fn sim_time_dilates_with_quantum() {
    let spec = ping_pong(2, 30, 64);
    let truth = run_workload(&spec, &base(7));
    for q in [10u64, 100, 1000] {
        let r = run_workload(&spec, &base(7).with_sync(SyncConfig::fixed_micros(q)));
        assert!(
            r.sim_end >= truth.sim_end,
            "Q={q}µs contracted simulated time: {} < {}",
            r.sim_end,
            truth.sim_end
        );
    }
}

/// The headline result: on a bursty workload the adaptive quantum is much
/// faster than the ground truth while staying far more accurate than the
/// fastest fixed quantum.
#[test]
fn adaptive_beats_the_tradeoff() {
    let exp = Experiment::new(
        burst(4, 3_000_000, 4096),
        base(11),
        vec![SyncConfig::fixed_micros(1000), SyncConfig::paper_dyn1()],
    );
    let r = exp.run();
    let fixed = &r.outcomes[0];
    let dyn1 = &r.outcomes[1];
    assert!(
        dyn1.speedup > 3.0,
        "adaptive too slow: {:.1}x",
        dyn1.speedup
    );
    assert!(
        dyn1.accuracy_error < fixed.accuracy_error / 2.0 + 1e-9,
        "adaptive not more accurate: {} vs {}",
        dyn1.accuracy_error,
        fixed.accuracy_error
    );
}

/// Functional behaviour is independent of the synchronization policy: every
/// message is received exactly once under every configuration (the paper's
/// "the functional causality of the application is maintained by the data
/// flow, regardless of the skew in clock times").
#[test]
fn functional_behaviour_is_policy_independent() {
    let spec = nas::mg(4, Scale::Tiny);
    let expected: Vec<u64> = {
        let r = run_workload(&spec, &base(13));
        r.per_node.iter().map(|n| n.messages_received).collect()
    };
    for sync in paper_sweep() {
        let r = run_workload(&spec, &base(13).with_sync(sync.clone()));
        let got: Vec<u64> = r.per_node.iter().map(|n| n.messages_received).collect();
        assert_eq!(got, expected, "message counts changed under {sync}");
        let ops: u64 = r.total_ops();
        assert_eq!(ops, spec.total_ops(), "op counts changed under {sync}");
    }
}

/// Identical configuration + seed ⇒ identical run, including host timing.
#[test]
fn runs_are_bit_reproducible() {
    let spec = namd::namd(4, Scale::Tiny);
    let cfg = base(17)
        .with_sync(SyncConfig::paper_dyn2())
        .with_quantum_trace(true);
    let a = run_workload(&spec, &cfg);
    let b = run_workload(&spec, &cfg);
    assert_eq!(a.host_elapsed, b.host_elapsed);
    assert_eq!(a.sim_end, b.sim_end);
    assert_eq!(a.total_packets, b.total_packets);
    assert_eq!(a.stragglers, b.stragglers);
    assert_eq!(a.quanta.records(), b.quanta.records());
}

/// The adaptive quantum respects its configured bounds over a whole run.
#[test]
fn adaptive_quantum_stays_in_bounds() {
    let min = SimDuration::from_micros(2);
    let max = SimDuration::from_micros(50);
    let sync = SyncConfig::Adaptive(AdaptiveConfig::new(min, max, 1.10, 0.1));
    let spec = burst(4, 500_000, 1024);
    let r = run_workload(&spec, &base(19).with_sync(sync).with_quantum_trace(true));
    for q in r.quanta.records() {
        assert!(
            q.length >= min && q.length <= max,
            "quantum {} out of bounds",
            q.length
        );
    }
}

/// Compute-only workloads are exactly accurate under any quantum: with no
/// packets there are no stragglers and no way to lose precision.
#[test]
fn no_communication_means_no_error() {
    let spec = uniform_compute(4, 1_000_000, 0.2);
    let truth = run_workload(&spec, &base(23));
    let m0 = app_metric(&truth, spec.metric);
    for q in [100u64, 1000] {
        let r = run_workload(&spec, &base(23).with_sync(SyncConfig::fixed_micros(q)));
        let m = app_metric(&r, spec.metric);
        assert!(
            m.error_vs(&m0) < 1e-9,
            "compute-only workload drifted under Q={q}µs: {:?} vs {:?}",
            m,
            m0
        );
        assert_eq!(r.stragglers.count(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Algorithm 1, as a property over random policies and workloads, on
    /// both quantum engines: every quantum the policy emits stays inside
    /// `[min_quantum, max_quantum]`, and any quantum that saw packets is
    /// followed by a strictly shorter one (or stays pinned at the floor).
    #[test]
    fn adaptive_quantum_bounded_and_shrinks_on_packets(
        min_us in prop::sample::select(vec![1u64, 2]),
        span in prop::sample::select(vec![10u64, 50, 200]),
        inc in 1.02f64..1.3,
        dec in 0.02f64..0.4,
        rounds in 5usize..40,
        bytes in 64u64..8_000,
    ) {
        let min = SimDuration::from_micros(min_us);
        let max = SimDuration::from_micros(min_us + span);
        let sync = SyncConfig::Adaptive(AdaptiveConfig::new(min, max, inc, dec));
        let spec = ping_pong(2, rounds, bytes);
        for engine in [EngineKind::Deterministic, EngineKind::Threaded] {
            let report = Sim::new(spec.programs.clone())
                .engine(engine)
                .config(ClusterConfig::new(sync.clone()).with_seed(31))
                .max_quanta(50_000_000)
                .record(ObsConfig::new().with_ring_capacity(16_384))
                .run();
            let rec = report.obs.as_ref().expect("recording requested");
            prop_assert_eq!(rec.dropped(), 0, "ring wrapped; lengthen it");
            let quanta: Vec<(u64, u64)> =
                rec.samples().map(|s| (s.len.as_nanos(), s.packets)).collect();
            // The deterministic engine's final sample is truncated to
            // sim_end rather than policy-length; skip it.
            let Some((_, full)) = quanta.split_last() else { continue };
            let (lo, hi) = (min.as_nanos(), max.as_nanos());
            for &(len, _) in full {
                prop_assert!(
                    len >= lo && len <= hi,
                    "{engine:?}: quantum {len} ns outside [{lo}, {hi}] ns"
                );
            }
            for w in full.windows(2) {
                let ((len, packets), (next, _)) = (w[0], w[1]);
                if packets > 0 {
                    prop_assert!(
                        if len == lo { next == lo } else { next < len },
                        "{engine:?}: {packets} packets at {len} ns, next {next} ns \
                         (floor {lo} ns)"
                    );
                }
            }
        }
    }
}

/// The engine's simulated end time is consistent with its per-node views.
#[test]
fn result_invariants() {
    let spec = nas::ep(4, Scale::Tiny);
    let r = run_workload(&spec, &base(29).with_sync(SyncConfig::paper_dyn1()));
    assert_eq!(r.n_nodes, 4);
    assert_eq!(r.per_node.len(), 4);
    let max_finish = r.per_node.iter().map(|n| n.finish_sim).max().unwrap();
    assert_eq!(r.sim_end, max_finish);
    assert!(r.sim_end > SimTime::ZERO);
    for n in &r.per_node {
        assert!(n.finish_sim <= r.sim_end);
        assert!(n.ops > 0);
    }
}
