//! The scenario corpus is part of the contract: every checked-in scenario
//! must run and pass its own assertions, the flagship chaos scenario must
//! be bit-identical across engines and worker counts, and every file in
//! `scenarios/malformed/` must be rejected with a typed error.

use aqs::cluster::SimError;
use aqs::scenario::{run_scenario, Scenario, ScenarioError};
use std::path::{Path, PathBuf};

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn toml_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .toml files in {}", dir.display());
    files
}

#[test]
fn allreduce_chaos_is_bit_identical_across_engines_and_worker_counts() {
    let scenario =
        Scenario::load(scenarios_dir().join("allreduce_chaos.toml")).expect("scenario parses");
    assert!(
        scenario
            .chaos
            .is_some_and(|c| c.link_flap > 0.0 && c.loss > 0.0),
        "the flagship scenario must inject link flaps and packet loss"
    );
    assert!(scenario.phases.len() >= 2, "must be multi-phase");
    assert_eq!(scenario.shards, vec![1, 2, 4]);

    let report = run_scenario(&scenario).expect("scenario passes its assertions");
    // deterministic + threaded + sharded {1,2,4}
    assert_eq!(report.runs.len(), 5);
    let outcome = report.runs[0].report.simulated_outcome();
    for run in &report.runs[1..] {
        assert_eq!(
            run.report.simulated_outcome(),
            outcome,
            "{} diverged from {}",
            run.label,
            report.runs[0].label
        );
    }

    // Same file, same seed: a fresh load replays bit for bit.
    let again = run_scenario(
        &Scenario::load(scenarios_dir().join("allreduce_chaos.toml")).expect("reloads"),
    )
    .expect("passes again");
    assert_eq!(
        again.outcome, report.outcome,
        "scenario replay must be exact"
    );
}

#[test]
fn chaos_delays_but_never_loses_traffic() {
    let mut scenario =
        Scenario::load(scenarios_dir().join("allreduce_chaos.toml")).expect("scenario parses");
    let chaotic = run_scenario(&scenario).expect("chaotic run passes");
    scenario.chaos = None;
    let clean = run_scenario(&scenario).expect("clean run passes");
    assert_eq!(
        chaotic.outcome.messages_received, clean.outcome.messages_received,
        "loss is modeled as retransmit delay, not real drops"
    );
    assert!(
        chaotic.outcome.sim_end > clean.outcome.sim_end,
        "chaos must actually perturb the run ({} vs {})",
        chaotic.outcome.sim_end,
        clean.outcome.sim_end
    );
}

#[test]
fn every_corpus_scenario_passes() {
    for path in toml_files(&scenarios_dir()) {
        let scenario =
            Scenario::load(&path).unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        run_scenario(&scenario).unwrap_or_else(|e| panic!("{} must pass: {e}", path.display()));
    }
}

#[test]
fn every_malformed_scenario_is_rejected_with_a_typed_error() {
    for path in toml_files(&scenarios_dir().join("malformed")) {
        let err = match Scenario::load(&path) {
            Err(e) => ScenarioError::Sim(e),
            // Some malformations only surface when the runs are configured.
            Ok(scenario) => match run_scenario(&scenario) {
                Err(e) => e,
                Ok(_) => panic!("{} must be rejected", path.display()),
            },
        };
        match err {
            ScenarioError::Sim(
                SimError::ScenarioParse { ref file, .. }
                | SimError::ScenarioValidate { ref file, .. },
            ) => {
                assert!(
                    file.ends_with(path.file_name().unwrap().to_str().unwrap()),
                    "{}: error must carry the file path, got {err}",
                    path.display()
                );
            }
            other => panic!("{}: wrong error kind: {other}", path.display()),
        }
    }
}
